"""Numerical self-healing layer: ladder, guards, restarts, end-to-end.

Covers the recovery subsystem top to bottom:

* :func:`repro.core.eigen.decompose_guarded` fallback ladder — each rung
  exercised via a monkeypatched ``scipy.linalg.eigh``;
* spectral vs Padé ``P(t)`` agreement across extreme branch lengths and
  ω (the fallback must be a drop-in for the healthy path);
* the P(t)/symmetric-operator guards (clamp / renormalise / hard error);
* CLV checks in pruning (zero columns, non-finite values);
* seeded optimizer restarts (non-finite start, line-search collapse);
* batch scans: injected failures recover end-to-end with diagnostics in
  the journal and summary, and bit-identity holds wherever recovery has
  nothing to do.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
import scipy.linalg

from repro.codon.matrix import build_rate_matrix
from repro.core.eigen import PadeFallback, SpectralDecomposition, decompose, decompose_guarded
from repro.core.engine import make_engine
from repro.core.expm import transition_matrix_einsum, transition_matrix_scipy
from repro.core.recovery import (
    FitDiagnostics,
    NumericalError,
    NumericalEvent,
    NumericalEventRecorder,
    PruningGuard,
    RecoveryConfig,
    RecoveryPolicy,
    guard_symmetric_operator,
    guard_transition_matrix,
)
from repro.io.results_io import ResultJournal
from repro.likelihood.pruning import prune_site_class
from repro.optimize.bfgs import BARRIER_SLOPE, minimize_bfgs
from repro.optimize.ml import fit_model
from repro.parallel.batch import scan_branches
from tests.conftest import ENGINE_NAMES

REAL_EIGH = scipy.linalg.eigh


@pytest.fixture(scope="module")
def pi():
    rng = np.random.default_rng(5)
    raw = rng.dirichlet(np.full(61, 4.0))
    return raw / raw.sum()


@pytest.fixture(scope="module")
def matrix(pi):
    return build_rate_matrix(2.3, 0.6, pi)


# ----------------------------------------------------------------------
# Fallback ladder
# ----------------------------------------------------------------------
class TestFallbackLadder:
    def test_healthy_matrix_uses_first_rung(self, matrix):
        recorder = NumericalEventRecorder()
        decomp = decompose_guarded(matrix, recorder=recorder)
        assert isinstance(decomp, SpectralDecomposition)
        assert len(recorder) == 0  # nothing fired on the healthy path

    def test_evr_failure_falls_to_ev(self, matrix, monkeypatch):
        def flaky(a, *args, **kwargs):
            if kwargs.get("driver") == "evr":
                raise np.linalg.LinAlgError("injected evr failure")
            return REAL_EIGH(a, *args, **kwargs)

        monkeypatch.setattr(scipy.linalg, "eigh", flaky)
        recorder = NumericalEventRecorder()
        decomp = decompose_guarded(matrix, driver="evr", recorder=recorder)
        assert isinstance(decomp, SpectralDecomposition)
        counts = recorder.counts()
        assert counts == {"eigh_failure": 1, "eigh_fallback": 1}
        fallback = [e for e in recorder if e.kind == "eigh_fallback"][0]
        assert fallback.detail == "ev"

    def test_residual_rejection_falls_to_ev(self, matrix, monkeypatch):
        def garbage_evr(a, *args, **kwargs):
            if kwargs.get("driver") == "evr":
                n = a.shape[0]
                return np.zeros(n), np.eye(n)  # reconstructs to 0 != A
            return REAL_EIGH(a, *args, **kwargs)

        monkeypatch.setattr(scipy.linalg, "eigh", garbage_evr)
        recorder = NumericalEventRecorder()
        decomp = decompose_guarded(matrix, driver="evr", recorder=recorder)
        assert isinstance(decomp, SpectralDecomposition)
        counts = recorder.counts()
        assert counts == {"eigh_residual": 1, "eigh_fallback": 1}

    def test_total_failure_falls_to_pade(self, matrix, monkeypatch):
        def dead(a, *args, **kwargs):
            raise np.linalg.LinAlgError("injected total failure")

        monkeypatch.setattr(scipy.linalg, "eigh", dead)
        recorder = NumericalEventRecorder()
        decomp = decompose_guarded(matrix, driver="evr", recorder=recorder)
        assert isinstance(decomp, PadeFallback)
        counts = recorder.counts()
        assert counts["eigh_failure"] == 2  # both evr and ev rungs
        pade = [e for e in recorder if e.kind == "eigh_fallback"][-1]
        assert pade.detail == "pade"
        # The fallback generator reproduces P(t) = expm(Q t).
        p = transition_matrix_scipy(decomp.q, 0.37)
        assert np.allclose(p.sum(axis=1), 1.0, atol=1e-12)

    def test_ev_driver_has_no_duplicate_rung(self, matrix, monkeypatch):
        def dead(a, *args, **kwargs):
            raise np.linalg.LinAlgError("injected")

        monkeypatch.setattr(scipy.linalg, "eigh", dead)
        recorder = NumericalEventRecorder()
        decomp = decompose_guarded(matrix, driver="ev", recorder=recorder)
        assert isinstance(decomp, PadeFallback)
        assert recorder.counts()["eigh_failure"] == 1  # single eigh rung


class TestSpectralVsPade:
    """The Padé fallback must be a drop-in for the spectral path."""

    @pytest.mark.parametrize("omega", [1e-6, 1e-2, 1.0, 50.0])
    @pytest.mark.parametrize("t", [1e-8, 1e-3, 0.5, 10.0, 100.0])
    def test_extreme_parameters(self, pi, omega, t):
        rm = build_rate_matrix(2.0, omega, pi)
        decomp = decompose(rm)
        p_spectral = transition_matrix_einsum(decomp, t)
        p_pade = transition_matrix_scipy(rm.q, t)
        assert np.allclose(p_spectral, p_pade, atol=1e-9)
        assert np.allclose(p_pade.sum(axis=1), 1.0, atol=1e-9)


# ----------------------------------------------------------------------
# Operator guards
# ----------------------------------------------------------------------
class TestTransitionGuard:
    def setup_method(self):
        self.config = RecoveryConfig()
        self.recorder = NumericalEventRecorder()

    def test_clean_matrix_untouched(self):
        p = np.array([[0.9, 0.1], [0.2, 0.8]])
        before = p.copy()
        out = guard_transition_matrix(p, self.config, self.recorder, t=0.1)
        assert out is p
        assert np.array_equal(p, before)  # bit-identical: no event, no edit
        assert len(self.recorder) == 0

    def test_tiny_negative_clamped(self):
        p = np.array([[-1e-10, 1.0 + 1e-10], [0.5, 0.5]])
        guard_transition_matrix(p, self.config, self.recorder, t=0.1)
        assert p[0, 0] == 0.0
        assert self.recorder.counts() == {"pt_negative_clamped": 1}

    def test_large_negative_is_hard_error(self):
        p = np.array([[-1e-3, 1.0 + 1e-3], [0.5, 0.5]])
        with pytest.raises(NumericalError):
            guard_transition_matrix(p, self.config, self.recorder, t=0.1)
        assert "pt_invalid" in self.recorder.counts()

    def test_row_drift_renormalized(self):
        p = np.array([[0.9, 0.1], [0.2, 0.8]]) * (1.0 + 1e-5)
        guard_transition_matrix(p, self.config, self.recorder, t=0.1)
        assert np.allclose(p.sum(axis=1), 1.0, atol=1e-12)
        assert self.recorder.counts() == {"pt_row_renormalized": 1}

    def test_row_drift_beyond_repair_is_hard_error(self):
        p = np.array([[0.9, 0.1], [0.2, 0.8]]) * 1.5
        with pytest.raises(NumericalError):
            guard_transition_matrix(p, self.config, self.recorder, t=0.1)

    def test_nonfinite_is_hard_error(self):
        p = np.array([[np.nan, 1.0], [0.5, 0.5]])
        with pytest.raises(NumericalError) as exc_info:
            guard_transition_matrix(p, self.config, self.recorder, t=2.5, engine="slim")
        assert exc_info.value.context["t"] == 2.5
        assert exc_info.value.context["engine"] == "slim"


class TestSymmetricGuard:
    def test_clean_operator_untouched(self):
        pi = np.array([0.5, 0.5])
        m = np.ones((2, 2))
        recorder = NumericalEventRecorder()
        out = guard_symmetric_operator(m, pi, RecoveryConfig(), recorder, t=0.1)
        assert out is m and len(recorder) == 0

    def test_drift_recorded_but_never_renormalized(self):
        pi = np.array([0.5, 0.5])
        m = np.ones((2, 2)) * (1.0 + 1e-5)
        before = m.copy()
        recorder = NumericalEventRecorder()
        guard_symmetric_operator(m, pi, RecoveryConfig(), recorder, t=0.1)
        # Renormalising would break the symmetry dsymm relies on.
        assert np.array_equal(m, before)
        assert recorder.counts() == {"pt_row_drift": 1}

    def test_large_drift_is_hard_error(self):
        pi = np.array([0.5, 0.5])
        m = np.ones((2, 2)) * 1.5
        with pytest.raises(NumericalError):
            guard_symmetric_operator(m, pi, RecoveryConfig(), None, t=0.1)


# ----------------------------------------------------------------------
# Pruning CLV checks
# ----------------------------------------------------------------------
def _toy_pruning(leaf_clvs, guard=None):
    branch_table = [(0, 2, 0.1, False), (1, 2, 0.1, False)]
    return prune_site_class(
        branch_table,
        n_nodes=3,
        leaf_clvs=leaf_clvs,
        transition_factory=lambda t, fg: None,
        propagate=lambda op, clv: clv.copy(),
        guard=guard,
    )


class TestPruningGuards:
    def test_zero_column_raises_with_node_and_patterns(self):
        # Disjoint leaf indicators in column 0: the product is all-zero.
        a = np.array([[1.0, 1.0], [0.0, 0.0], [0.0, 0.5], [0.0, 0.0]])
        b = np.array([[0.0, 1.0], [1.0, 0.0], [0.0, 0.5], [0.0, 0.0]])
        recorder = NumericalEventRecorder()
        guard = PruningGuard(recorder=recorder, context={"site_class": "0"})
        with pytest.raises(NumericalError) as exc_info:
            _toy_pruning([a, b], guard=guard)
        assert exc_info.value.context["node"] == 2
        assert "0" in exc_info.value.context["patterns"]
        assert recorder.counts() == {"clv_zero_column": 1}

    def test_zero_column_without_guard_keeps_minus_inf(self):
        a = np.array([[1.0, 1.0], [0.0, 0.0], [0.0, 0.5], [0.0, 0.0]])
        b = np.array([[0.0, 1.0], [1.0, 0.0], [0.0, 0.5], [0.0, 0.0]])
        result = _toy_pruning([a, b], guard=None)
        logs = result.site_log_likelihoods(np.full(4, 0.25))
        assert logs[0] == -np.inf  # legacy behaviour preserved bit-for-bit
        assert np.isfinite(logs[1])

    def test_nonfinite_clv_raises(self):
        a = np.array([[np.nan, 1.0], [0.0, 0.0], [0.0, 0.5], [0.0, 0.0]])
        b = np.array([[1.0, 1.0], [0.0, 0.0], [0.0, 0.5], [0.0, 0.0]])
        recorder = NumericalEventRecorder()
        with pytest.raises(NumericalError):
            _toy_pruning([a, b], guard=PruningGuard(recorder=recorder))
        assert recorder.counts() == {"clv_nonfinite": 1}


# ----------------------------------------------------------------------
# Optimizer non-finite handling + restarts
# ----------------------------------------------------------------------
class TestBfgsBarrier:
    def test_barrier_slope_is_named(self):
        assert BARRIER_SLOPE == 1e8

    def test_minus_inf_is_a_barrier_not_a_descent(self):
        # Legacy code let -inf through the NaN-only check and accepted a
        # step into the fault region; now every non-finite maps to +inf.
        def f(x):
            if x[0] >= 2.0:
                return -np.inf
            return (x[0] - 1.9) ** 2

        result = minimize_bfgs(f, np.array([0.0]), max_iterations=50)
        assert np.isfinite(result.fun)
        assert result.x[0] < 2.0

    def test_line_search_collapse_flagged(self):
        x0 = np.array([0.5, -0.5])

        def spike(z):
            return 0.0 if np.array_equal(z, x0) else np.inf

        result = minimize_bfgs(spike, x0, max_iterations=10)
        assert result.line_search_failed
        assert result.n_iterations == 0


class _PoisonedBound:
    """Proxy bound whose log-likelihood NaNs for the first ``n_bad`` calls."""

    def __init__(self, inner, n_bad):
        self._inner = inner
        self._calls = 0
        self._n_bad = n_bad
        self.engine = inner.engine
        self.model = inner.model
        self.branch_lengths = inner.branch_lengths

    def log_likelihood(self, values, lengths):
        self._calls += 1
        if self._calls <= self._n_bad:
            return float("nan")
        return self._inner.log_likelihood(values, lengths)


class _CliffBound:
    """Finite exactly twice (pre-check + optimizer start), then -inf.

    Forces a line-search collapse at iteration 0, then non-finite
    restarts until the budget runs out — both policy triggers in one
    deterministic fixture.
    """

    def __init__(self, inner):
        self._calls = 0
        self.engine = inner.engine
        self.model = inner.model
        self.branch_lengths = inner.branch_lengths

    def log_likelihood(self, values, lengths):
        self._calls += 1
        return 0.0 if self._calls <= 2 else -np.inf


@pytest.fixture(scope="module")
def bound(small_tree, small_sim, h0_model):
    return make_engine("slim").bind(small_tree, small_sim.alignment, h0_model)


class TestRecoveryPolicy:
    def test_restart_recovers_poisoned_start(self, bound):
        poisoned = _PoisonedBound(bound, n_bad=1)
        fit = fit_model(poisoned, seed=3, max_iterations=10, recovery=RecoveryPolicy())
        assert np.isfinite(fit.lnl)
        assert fit.diagnostics.restarts == 1
        counts = fit.diagnostics.event_counts()
        assert counts["nonfinite_start"] == 1
        assert counts["optimizer_restart"] == 1
        assert fit.diagnostics.recovered

    def test_without_policy_poisoned_start_still_raises(self, bound):
        with pytest.raises(ValueError, match="not finite at the start"):
            fit_model(_PoisonedBound(bound, n_bad=1), seed=3, max_iterations=10)

    def test_restarts_are_seeded_and_deterministic(self, bound):
        fits = [
            fit_model(
                _PoisonedBound(bound, n_bad=1),
                seed=3,
                max_iterations=10,
                recovery=RecoveryPolicy(),
            )
            for _ in range(2)
        ]
        assert fits[0].lnl == fits[1].lnl
        assert np.array_equal(fits[0].branch_lengths, fits[1].branch_lengths)

    def test_collapse_then_budget_exhaustion_keeps_best(self, bound):
        policy = RecoveryPolicy(max_restarts=3)
        fit = fit_model(_CliffBound(bound), seed=3, max_iterations=10, recovery=policy)
        assert fit.lnl == 0.0  # the one finite optimum survives
        assert fit.diagnostics.restarts == 3
        kinds = fit.diagnostics.event_counts()
        assert kinds["nonfinite_start"] >= 1
        assert any(
            "line search" in e.detail
            for e in fit.diagnostics.events
            if e.kind == "optimizer_restart"
        )

    def test_healthy_fit_is_bit_identical_with_policy(self, bound):
        plain = fit_model(bound, seed=3, max_iterations=15)
        recovered = fit_model(bound, seed=3, max_iterations=15, recovery=RecoveryPolicy())
        assert plain.lnl == recovered.lnl
        assert np.array_equal(plain.branch_lengths, recovered.branch_lengths)
        assert plain.n_evaluations == recovered.n_evaluations
        assert not recovered.diagnostics.recovered


# ----------------------------------------------------------------------
# Engine-level: guarded engines stay bit-identical; fallback agrees
# ----------------------------------------------------------------------
class TestEngineBitIdentity:
    @pytest.mark.parametrize("name", ENGINE_NAMES)
    def test_recovery_enabled_is_bit_identical_on_clean_data(
        self, name, small_tree, small_sim, h1_model, bsm_values
    ):
        lengths = np.asarray(
            [b[2] for b in small_tree.branch_table()], dtype=float
        )
        plain = make_engine(name).bind(small_tree, small_sim.alignment, h1_model)
        guarded = make_engine(name, recovery=RecoveryConfig()).bind(
            small_tree, small_sim.alignment, h1_model
        )
        lnl_plain = plain.log_likelihood(bsm_values, lengths)
        lnl_guarded = guarded.log_likelihood(bsm_values, lengths)
        assert lnl_plain == lnl_guarded
        assert len(guarded.engine.events) == 0

    @pytest.mark.parametrize("name", ENGINE_NAMES)
    def test_pade_fallback_agrees_with_spectral(
        self, name, small_tree, small_sim, h1_model, bsm_values, monkeypatch
    ):
        lengths = np.asarray(
            [b[2] for b in small_tree.branch_table()], dtype=float
        )
        healthy = make_engine(name).bind(small_tree, small_sim.alignment, h1_model)
        lnl_healthy = healthy.log_likelihood(bsm_values, lengths)

        def dead(a, *args, **kwargs):
            raise np.linalg.LinAlgError("injected total failure")

        monkeypatch.setattr(scipy.linalg, "eigh", dead)
        guarded = make_engine(name, recovery=RecoveryConfig()).bind(
            small_tree, small_sim.alignment, h1_model
        )
        lnl_fallback = guarded.log_likelihood(bsm_values, lengths)
        assert lnl_fallback == pytest.approx(lnl_healthy, abs=1e-6)
        counts = guarded.engine.events.counts()
        assert counts.get("eigh_fallback", 0) > 0


# ----------------------------------------------------------------------
# End-to-end: scans, journal, summary
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def scan_inputs(small_tree, small_sim):
    from repro.trees.newick import parse_newick, write_newick
    from repro.trees.tree import Tree  # noqa: F401 - parse round-trip strips marks

    newick = write_newick(small_tree)
    unmarked = parse_newick(newick.replace("#1", ""))
    return unmarked, small_sim.alignment


class TestScanRecovery:
    def test_injected_failure_recovers_end_to_end(
        self, scan_inputs, tmp_path, monkeypatch
    ):
        tree, alignment = scan_inputs
        journal = str(tmp_path / "scan.jsonl")

        def flaky(a, *args, **kwargs):
            if kwargs.get("driver") == "evr":
                raise np.linalg.LinAlgError("injected evr failure")
            return REAL_EIGH(a, *args, **kwargs)

        monkeypatch.setattr(scipy.linalg, "eigh", flaky)
        scan = scan_branches(
            "geneX", tree, alignment,
            engine="slim", seed=1, max_iterations=3,
            internal_only=True, journal=journal, recover=True,
        )
        assert scan.ok  # every branch produced an LRT despite the fault
        summary = scan.summary()
        assert summary.n_recovered == summary.n_ok > 0
        assert summary.events_by_kind.get("eigh_fallback", 0) > 0
        assert "numerics" in summary.format()

        # Diagnostics survive the JSONL journal round-trip.
        loaded = ResultJournal(journal).load()
        assert all(r.recovered for r in loaded)
        diag = FitDiagnostics.from_dict(loaded[0].diagnostics)
        assert diag.event_counts().get("eigh_fallback", 0) > 0
        with open(journal, encoding="utf-8") as handle:
            header = json.loads(handle.readline())
        assert header["version"] >= 3

    def test_unaffected_scan_is_bit_identical_with_recovery(self, scan_inputs):
        tree, alignment = scan_inputs
        plain = scan_branches(
            "geneY", tree, alignment,
            engine="slim", seed=1, max_iterations=3, internal_only=True,
        )
        guarded = scan_branches(
            "geneY", tree, alignment,
            engine="slim", seed=1, max_iterations=3, internal_only=True,
            recover=True,
        )
        assert guarded.summary().n_recovered == 0
        for a, b in zip(plain.gene_results, guarded.gene_results):
            assert a.lnl0 == b.lnl0
            assert a.lnl1 == b.lnl1
            assert a.statistic == b.statistic

    def test_fit_diagnostics_event_roundtrip(self):
        diag = FitDiagnostics(
            restarts=2,
            boundary_flags=["h1:omega2"],
            events=[
                NumericalEvent("eigh_fallback", "eigen", "pade", {"omega": 0.5}),
                NumericalEvent("optimizer_restart", "optimizer", "non-finite start"),
            ],
        )
        clone = FitDiagnostics.from_dict(json.loads(json.dumps(diag.to_dict())))
        assert clone.restarts == 2
        assert clone.boundary_flags == ["h1:omega2"]
        assert clone.event_counts() == diag.event_counts()
        assert clone.events[0].context["omega"] == 0.5
        assert "restart" in clone.describe()
