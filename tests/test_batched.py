"""Batched BLAS-3 evaluation: bit-identity, view semantics, ledgers.

The stacked-operator build and the level-order propagation promise
*exact* float equality with the per-branch path (DESIGN.md §10) — every
likelihood comparison here is ``==``; a single ulp of drift fails.
"""

import numpy as np
import pytest

from repro.codon.matrix import build_rate_matrix
from repro.core.eigen import decompose
from repro.core.engine import BatchedOperatorSet, make_engine
from repro.core.expm import (
    stacked_symmetric_operators,
    stacked_syrk_operators,
    symmetric_branch_matrix,
    transition_matrix_syrk,
)
from repro.core.flops import FlopCounter, blas_level, symm_flops, syrk_flops
from repro.core.recovery import RecoveryConfig
from repro.likelihood.pruning import (
    build_level_schedule,
    compute_recompute_rows,
)
from repro.trees.newick import parse_newick

ENGINE_NAMES = ("codeml", "slim", "slim-v2")

#: Branch lengths cover the regimes that stress the exponential: zero,
#: optimiser-probe tiny, ordinary, and saturating.
TS = [0.0, 1e-6, 0.01, 0.08, 0.3, 2.5]


@pytest.fixture(scope="module")
def decomp():
    rng = np.random.default_rng(3)
    pi = rng.dirichlet(np.full(61, 6.0))
    return decompose(build_rate_matrix(2.1, 0.8, pi))


# ----------------------------------------------------------------------
# Stacked operator builders: bitwise vs the per-branch kernels
# ----------------------------------------------------------------------
class TestStackedBuilders:
    @pytest.mark.parametrize("clip", [True, False])
    def test_syrk_stack_matches_per_branch(self, decomp, clip):
        stack = stacked_syrk_operators(decomp, TS, clip_negative=clip)
        n = decomp.n_states
        assert stack.flags.f_contiguous and stack.shape == (n, n * len(TS))
        for b, t in enumerate(TS):
            view = stack[:, b * n : (b + 1) * n]
            ref = transition_matrix_syrk(decomp, t, clip_negative=clip)
            np.testing.assert_array_equal(view, ref)

    def test_symmetric_stack_matches_per_branch(self, decomp):
        stack = stacked_symmetric_operators(decomp, TS)
        n = decomp.n_states
        assert stack.flags.f_contiguous
        for b, t in enumerate(TS):
            view = stack[:, b * n : (b + 1) * n]
            ref = symmetric_branch_matrix(decomp, t)
            np.testing.assert_array_equal(view, ref)

    def test_empty_ts(self, decomp):
        assert stacked_syrk_operators(decomp, []).shape == (61, 0)
        assert stacked_symmetric_operators(decomp, []).shape == (61, 0)

    def test_counter_charges_blas3(self, decomp):
        counter = FlopCounter()
        stacked_syrk_operators(decomp, TS, counter=counter)
        assert counter.blas3_fraction == 1.0
        n = decomp.n_states
        assert counter.by_operation["expm:dsyrk"] == len(TS) * syrk_flops(n, n)


# ----------------------------------------------------------------------
# BatchedOperatorSet view semantics
# ----------------------------------------------------------------------
class TestOperatorSetViews:
    def _operator_matrix(self, engine_name, op):
        return op[0] if engine_name == "slim-v2" else op

    @pytest.mark.parametrize("engine_name", ["slim", "slim-v2"])
    @pytest.mark.parametrize("recover", [False, True])
    def test_views_read_only_f_contiguous(self, decomp, engine_name, recover):
        engine = make_engine(
            engine_name, recovery=RecoveryConfig() if recover else None
        )
        opset = engine.build_operator_set(decomp, TS)
        assert len(opset) == len(TS)
        n = decomp.n_states
        for t in TS:
            assert t in opset
            m = self._operator_matrix(engine_name, opset.view(t))
            assert m.flags.f_contiguous
            assert not m.flags.writeable
            assert m.shape == (n, n)
            with pytest.raises((ValueError, RuntimeError)):
                m[0, 0] = 1.0
        # The views alias the frozen stack — zero-copy slicing.
        assert opset.stack is not None
        for t in TS:
            m = self._operator_matrix(engine_name, opset.view(t))
            assert np.shares_memory(m, opset.stack)

    @pytest.mark.parametrize("engine_name", ["slim", "slim-v2"])
    def test_views_survive_recovery_guards(self, decomp, engine_name):
        # The recovery ladder guards (and may repair) operators *before*
        # the stack freezes; the public views must equal the guarded
        # per-branch operators bit for bit afterwards.
        guarded = make_engine(engine_name, recovery=RecoveryConfig())
        plain = make_engine(engine_name, recovery=RecoveryConfig())
        opset = guarded.build_operator_set(decomp, TS)
        for t in TS:
            ref = self._operator_matrix(engine_name, plain._make_operator(decomp, t))
            got = self._operator_matrix(engine_name, opset.view(t))
            np.testing.assert_array_equal(got, ref)

    def test_unknown_length_is_an_error(self, decomp):
        opset = make_engine("slim").build_operator_set(decomp, TS)
        with pytest.raises(KeyError):
            opset.view(0.123456)


# ----------------------------------------------------------------------
# Level schedule + recompute planning
# ----------------------------------------------------------------------
class TestLevelSchedule:
    def _rows(self, newick):
        tree = parse_newick(newick)
        lengths = tree.branch_lengths()
        return [
            (n.index, n.parent.index, float(lengths[k]), bool(n.foreground))
            for k, n in enumerate(n for n in tree.nodes if not n.is_root)
        ], len(tree.nodes)

    def test_levels_respect_heights(self):
        rows, n_nodes = self._rows(
            "((A:0.2,B:0.1):0.08 #1,(C:0.15,D:0.12):0.05,E:0.3);"
        )
        schedule = build_level_schedule(rows, n_nodes)
        # Leaves sit at height 0, their parents at 1, the root above.
        for h, level_rows in enumerate(schedule.levels):
            for ri in level_rows:
                assert schedule.heights[rows[ri][0]] == h
        # Every branch row is scheduled exactly once.
        assert sorted(ri for lvl in schedule.levels for ri in lvl) == list(
            range(len(rows))
        )
        assert schedule.root_index == rows[-1][1]

    def test_recompute_rows_none_means_all(self):
        rows, n_nodes = self._rows(
            "((A:0.2,B:0.1):0.08 #1,(C:0.15,D:0.12):0.05,E:0.3);"
        )
        assert compute_recompute_rows(rows, None) == list(range(len(rows)))

    def test_recompute_rows_follows_root_path(self):
        rows, n_nodes = self._rows(
            "((A:0.2,B:0.1):0.08 #1,(C:0.15,D:0.12):0.05,E:0.3);"
        )
        # Dirtying one leaf branch recomputes it plus every ancestor
        # branch on its root path, and nothing else.
        leaf = rows[0][0]
        recomputed = compute_recompute_rows(rows, {leaf})
        assert rows[recomputed[0]][0] == leaf
        children = {rows[ri][0] for ri in recomputed}
        for ri in recomputed[1:]:
            assert rows[ri][0] not in (leaf,)
        # Each recomputed internal branch's child is the parent of some
        # earlier recomputed row (the path property).
        parents = {rows[ri][1] for ri in recomputed}
        assert children - {leaf} <= parents | {rows[-1][1]}


# ----------------------------------------------------------------------
# End-to-end bit-identity: batched == per-branch, all engines × modes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine_name", ENGINE_NAMES)
@pytest.mark.parametrize("incremental", [False, True])
@pytest.mark.parametrize("recover", [False, True])
def test_batched_bitwise_identical(
    engine_name, incremental, recover, small_tree, small_sim, h1_model, bsm_values
):
    def build(batched):
        engine = make_engine(
            engine_name, recovery=RecoveryConfig() if recover else None
        )
        return engine.bind(
            small_tree, small_sim.alignment, h1_model,
            incremental=incremental, batched=batched,
        )

    ub, ba = build(False), build(True)
    assert ub.log_likelihood(bsm_values) == ba.log_likelihood(bsm_values)
    # Dirty one branch, then return to base (exercises populate →
    # incremental → reuse transitions on both sides).
    bumped = ub.branch_lengths.copy()
    bumped[2] *= 1.3
    assert ub.log_likelihood(bsm_values, bumped) == ba.log_likelihood(
        bsm_values, bumped
    )
    assert ub.log_likelihood(bsm_values) == ba.log_likelihood(bsm_values)
    if incremental:
        # Probe evaluations (gradient hints) must agree and must not
        # disturb the committed base state.
        probe = ub.branch_lengths.copy()
        probe[1] *= 1.01
        assert ub.log_likelihood(
            bsm_values, probe, touched=(1,)
        ) == ba.log_likelihood(bsm_values, probe, touched=(1,))
        assert ub.log_likelihood(bsm_values) == ba.log_likelihood(bsm_values)


def test_batched_site_class_matrix_identical(small_tree, small_sim, h1_model, bsm_values):
    ub = make_engine("slim-v2").bind(small_tree, small_sim.alignment, h1_model, batched=False)
    ba = make_engine("slim-v2").bind(small_tree, small_sim.alignment, h1_model, batched=True)
    m1, p1 = ub.site_class_matrix(bsm_values)
    m2, p2 = ba.site_class_matrix(bsm_values)
    np.testing.assert_array_equal(m1, m2)
    np.testing.assert_array_equal(p1, p2)


def test_slim_v2_defaults_batched(small_tree, small_sim, h1_model):
    assert make_engine("slim-v2").bind(small_tree, small_sim.alignment, h1_model).batched
    assert not make_engine("slim").bind(small_tree, small_sim.alignment, h1_model).batched
    assert not make_engine("codeml").bind(small_tree, small_sim.alignment, h1_model).batched
    # Explicit opt-out wins over the engine default.
    assert not make_engine("slim-v2").bind(
        small_tree, small_sim.alignment, h1_model, batched=False
    ).batched


# ----------------------------------------------------------------------
# Degenerate mixture weights: zero-weight classes build no operators
# ----------------------------------------------------------------------
class TestZeroWeightClasses:
    ZERO_P1 = {"kappa": 2.5, "omega0": 0.3, "omega2": 4.0, "p0": 0.9, "p1": 0.0}

    def test_skipped_without_building_operators(self, small_tree, small_sim, h1_model):
        engine = make_engine("slim-v2", cache_transition_matrices=True)
        bound = engine.bind(small_tree, small_sim.alignment, h1_model, batched=True)
        classes = h1_model.site_classes(self.ZERO_P1)
        zero = [c for c in classes if c.proportion == 0.0]
        assert len(zero) == 2  # classes 1 and 2b when p1 == 0
        bound.log_likelihood(self.ZERO_P1)
        # Expected distinct (ω, t) requests from the *live* classes only.
        lengths = bound.branch_lengths
        rows = [
            (child, parent, float(lengths[pos]), fg)
            for child, parent, pos, fg in bound._rows
        ]
        expected = {
            (cls.omega_foreground if fg else cls.omega_background, t)
            for cls in classes
            if cls.proportion != 0.0
            for _, _, t, fg in rows
        }
        stats = engine.cache_stats()
        assert stats["transition_misses"] == len(expected)
        # ω = 1 (the skipped classes' background) was never requested.
        live_omegas = {omega for omega, _ in expected}
        assert 1.0 not in live_omegas

    def test_zero_weight_lnl_matches_unbatched(self, small_tree, small_sim, h1_model):
        ub = make_engine("slim-v2").bind(
            small_tree, small_sim.alignment, h1_model, batched=False
        )
        ba = make_engine("slim-v2").bind(
            small_tree, small_sim.alignment, h1_model, batched=True
        )
        assert ub.log_likelihood(self.ZERO_P1) == ba.log_likelihood(self.ZERO_P1)

    def test_class_matrix_keeps_zero_rows(self, small_tree, small_sim, h1_model):
        # site_class_matrix feeds NEB/BEB and must report every class —
        # the skip optimisation only applies to the mixture evaluation.
        ba = make_engine("slim-v2").bind(
            small_tree, small_sim.alignment, h1_model, batched=True
        )
        m, props = ba.site_class_matrix(self.ZERO_P1)
        assert m.shape[0] == 4
        assert np.all(np.isfinite(m))


# ----------------------------------------------------------------------
# Background-tied dedupe ledger
# ----------------------------------------------------------------------
def test_background_tied_builds_ledgered_as_saved(
    small_tree, small_sim, h1_model, bsm_values
):
    counter = FlopCounter()
    engine = make_engine("slim-v2", counter=counter)
    bound = engine.bind(small_tree, small_sim.alignment, h1_model, batched=True)
    bound.log_likelihood(bsm_values)
    # Model A pairs 0↔2a and 1↔2b request identical background
    # operators; the planner builds each distinct (ω, t) once and
    # ledgers the aliases.
    saved = counter.saved_by_operation
    assert any(op.startswith("expm:") for op in saved), saved
    n = 61
    assert counter.total_saved_flops >= syrk_flops(n, n)


# ----------------------------------------------------------------------
# FlopCounter BLAS-level ledger
# ----------------------------------------------------------------------
class TestBlasLevelLedger:
    def test_blas_level_classification(self):
        assert blas_level("clv:dsymm") == "blas3"
        assert blas_level("expm:dsyrk") == "blas3"
        assert blas_level("expm:dgemm(eq9)") == "blas3"
        assert blas_level("clv:dgemv") == "blas2"
        assert blas_level("clv:dsymv") == "blas2"
        assert blas_level("eigh(dsyevr)") == "lapack"
        assert blas_level("clv:einsum-matvec") == "nonblas"

    def test_by_level_and_fraction(self):
        counter = FlopCounter()
        counter.add("expm:dsyrk", 600)
        counter.add("clv:dsymm", 300)
        counter.add("clv:dgemv", 100)
        assert counter.by_level == {"blas3": 900, "blas2": 100}
        assert counter.blas3_fraction == 0.9
        assert "BLAS-3 FRACTION" in counter.summary()
        assert "[blas3]" in counter.summary()

    def test_empty_counter_fraction_zero(self):
        assert FlopCounter().blas3_fraction == 0.0

    def test_batched_run_raises_blas3_fraction(
        self, small_tree, small_sim, h1_model, bsm_values
    ):
        def fraction(engine_name, batched):
            counter = FlopCounter()
            engine = make_engine(engine_name, counter=counter)
            bound = engine.bind(
                small_tree, small_sim.alignment, h1_model, batched=batched
            )
            bound.log_likelihood(bsm_values)
            return counter.blas3_fraction

        # The paper's per-branch prototype (slim: per-site dgemv) is
        # BLAS-2-heavy; the batched slim-v2 pipeline pushes the executed
        # arithmetic into dsyrk/dsymm.  This is the before/after pair
        # the E-BB benchmark reports.
        assert fraction("slim-v2", True) > fraction("slim", False)
        assert fraction("slim-v2", True) > 0.5
