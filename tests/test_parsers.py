"""Alignment file format parsers and writers."""

import pytest

from repro.alignment.msa import CodonAlignment
from repro.alignment.parsers import (
    parse_fasta_text,
    parse_phylip_text,
    read_alignment,
    write_fasta,
    write_phylip,
)


class TestFasta:
    def test_basic(self):
        names, seqs = parse_fasta_text(">a\nATGTTT\n>b\nATGCCC\n")
        assert names == ["a", "b"]
        assert seqs == ["ATGTTT", "ATGCCC"]

    def test_wrapped_sequences(self):
        names, seqs = parse_fasta_text(">a\nATG\nTTT\nCCC\n")
        assert seqs == ["ATGTTTCCC"]

    def test_header_description_dropped(self):
        names, _ = parse_fasta_text(">gene1 Homo sapiens BRCA1\nATG\n")
        assert names == ["gene1"]

    def test_blank_lines_skipped(self):
        names, seqs = parse_fasta_text("\n>a\n\nATG\n\n>b\nCCC\n\n")
        assert names == ["a", "b"] and seqs == ["ATG", "CCC"]

    def test_data_before_header(self):
        with pytest.raises(ValueError, match="before any FASTA header"):
            parse_fasta_text("ATG\n>a\nCCC\n")

    def test_empty_header(self):
        with pytest.raises(ValueError, match="empty FASTA header"):
            parse_fasta_text(">\nATG\n")

    def test_no_records(self):
        with pytest.raises(ValueError, match="no FASTA records"):
            parse_fasta_text("")


class TestPhylip:
    def test_sequential_one_line(self):
        text = " 2 6\nalpha  ATGTTT\nbeta   ATGCCC\n"
        names, seqs = parse_phylip_text(text)
        assert names == ["alpha", "beta"]
        assert seqs == ["ATGTTT", "ATGCCC"]

    def test_spaces_in_sequence(self):
        text = " 2 6\nalpha  ATG TTT\nbeta   ATG CCC\n"
        _, seqs = parse_phylip_text(text)
        assert seqs == ["ATGTTT", "ATGCCC"]

    def test_interleaved(self):
        text = " 2 12\nalpha  ATGTTT\nbeta   ATGCCC\nAAAAAA\nGGGGGG\n"
        names, seqs = parse_phylip_text(text)
        assert seqs == ["ATGTTTAAAAAA", "ATGCCCGGGGGG"]

    def test_bad_header(self):
        with pytest.raises(ValueError, match="bad PHYLIP header"):
            parse_phylip_text("hello world\n")
        with pytest.raises(ValueError, match="counts must be integers"):
            parse_phylip_text("two six\nalpha ATGTTT\n")

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="header promised"):
            parse_phylip_text(" 1 9\nalpha ATGTTT\n")

    def test_truncated(self):
        with pytest.raises(ValueError, match="ended before"):
            parse_phylip_text(" 3 6\nalpha ATGTTT\n")

    def test_empty(self):
        with pytest.raises(ValueError, match="empty"):
            parse_phylip_text("   \n")


class TestRoundTrips:
    @pytest.fixture
    def alignment(self):
        return CodonAlignment.from_sequences(
            ["alpha", "beta", "gamma"], ["ATGTTTCCC", "ATG---CCC", "ATGTTTAAA"]
        )

    def test_phylip_roundtrip(self, alignment, tmp_path):
        path = tmp_path / "aln.phy"
        write_phylip(alignment, path)
        again = read_alignment(path)
        assert again.names == alignment.names
        assert again.to_sequences() == alignment.to_sequences()

    def test_fasta_roundtrip(self, alignment, tmp_path):
        path = tmp_path / "aln.fa"
        write_fasta(alignment, path)
        again = read_alignment(path)
        assert again.names == alignment.names
        assert again.to_sequences() == alignment.to_sequences()

    def test_fasta_wrapping(self, alignment, tmp_path):
        path = tmp_path / "aln.fa"
        write_fasta(alignment, path, width=4)
        content = path.read_text()
        body_lines = [l for l in content.splitlines() if not l.startswith(">")]
        assert max(len(l) for l in body_lines) <= 4
        assert read_alignment(path).to_sequences() == alignment.to_sequences()

    def test_sniffing(self, alignment, tmp_path):
        fasta, phylip = tmp_path / "a.fa", tmp_path / "a.phy"
        write_fasta(alignment, fasta)
        write_phylip(alignment, phylip)
        assert read_alignment(fasta).names == read_alignment(phylip).names
