"""Two-ratio branch model."""

import numpy as np
import pytest

from repro.alignment.simulate import simulate_alignment
from repro.core.engine import make_engine
from repro.models.branch import TwoRatioModel
from repro.optimize.lrt import likelihood_ratio_test
from repro.optimize.ml import fit_model
from repro.trees.newick import parse_newick


class TestModelStructure:
    def test_param_sets(self):
        assert TwoRatioModel().param_names == (
            "kappa", "omega_background", "omega_foreground",
        )
        assert TwoRatioModel(fix_foreground=True).param_names == (
            "kappa", "omega_background",
        )

    def test_single_class_with_branch_heterogeneity(self):
        m = TwoRatioModel()
        classes = m.site_classes(
            {"kappa": 2.0, "omega_background": 0.2, "omega_foreground": 3.0}
        )
        assert len(classes) == 1
        assert classes[0].proportion == 1.0
        assert classes[0].omega_background == 0.2
        assert classes[0].omega_foreground == 3.0

    def test_null_fixes_foreground_at_one(self):
        null = TwoRatioModel().null_model()
        classes = null.site_classes({"kappa": 2.0, "omega_background": 0.2})
        assert classes[0].omega_foreground == 1.0

    def test_roundtrip(self):
        TwoRatioModel().check_roundtrip(
            {"kappa": 3.0, "omega_background": 0.4, "omega_foreground": 2.2}
        )
        TwoRatioModel(fix_foreground=True).check_roundtrip(
            {"kappa": 3.0, "omega_background": 0.4}
        )

    def test_requires_foreground_mark(self):
        from repro.alignment.msa import CodonAlignment

        tree = parse_newick("(A:0.1,B:0.1,C:0.1);")  # unmarked
        aln = CodonAlignment.from_sequences(["A", "B", "C"], ["ATG"] * 3)
        with pytest.raises(ValueError, match="foreground"):
            make_engine("slim").bind(tree, aln, TwoRatioModel())


class TestBranchTest:
    @pytest.fixture(scope="class")
    def fits(self):
        tree = parse_newick("((A:0.2,B:0.2):0.4 #1,(C:0.2,D:0.2):0.1,E:0.3);")
        truth = {"kappa": 2.0, "omega_background": 0.15, "omega_foreground": 4.0}
        sim = simulate_alignment(tree, TwoRatioModel(), truth, 300, seed=8)
        engine = make_engine("slim")
        # Start near plausible values: a single foreground branch makes
        # (omega_fg, t_fg) partially confounded, and the default start
        # can wander onto the omega->inf, t->0 ridge (a known local
        # optimum of this model, not an implementation artefact).
        alt = fit_model(
            engine.bind(tree, sim.alignment, TwoRatioModel()),
            start_values={"kappa": 2.0, "omega_background": 0.3, "omega_foreground": 3.0},
            seed=1, max_iterations=40,
        )
        null = fit_model(
            engine.bind(tree, sim.alignment, TwoRatioModel(fix_foreground=True)),
            seed=1, max_iterations=40,
        )
        return null, alt

    def test_alternative_beats_null_on_selected_data(self, fits):
        null, alt = fits
        lrt = likelihood_ratio_test(null.lnl, alt.lnl)
        assert lrt.statistic > 3.84

    def test_foreground_omega_recovered_above_one(self, fits):
        _, alt = fits
        assert alt.values["omega_foreground"] > 1.5
        assert alt.values["omega_background"] < 0.6

    def test_engines_agree(self):
        tree = parse_newick("((A:0.2,B:0.2):0.4 #1,(C:0.2,D:0.2):0.1,E:0.3);")
        truth = {"kappa": 2.0, "omega_background": 0.15, "omega_foreground": 4.0}
        sim = simulate_alignment(tree, TwoRatioModel(), truth, 100, seed=8)
        lnls = [
            make_engine(name).bind(tree, sim.alignment, TwoRatioModel()).log_likelihood(truth)
            for name in ("codeml", "slim", "slim-v2")
        ]
        assert np.allclose(lnls, lnls[0], rtol=1e-12)
