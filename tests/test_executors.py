"""Executor conformance: every backend yields the same TaskOutcome streams.

The fault-policy driver (:func:`repro.parallel.faults.run_tasks`) is
backend-agnostic; these tests pin the contract by running the same
batches over the inline, process-pool and socket backends and asserting
identical outcome signatures — including the hang-timeout and crash
kinds, which stay behind the ``slow`` marker (they spend wall clock on
real deadlines and real dead processes).

Workers are module-level so they pickle into worker processes and over
the socket executor's wire protocol.
"""

import contextlib
import faulthandler
import multiprocessing
import os
import signal
import socket
import threading
import time

import numpy as np
import pytest

from repro.parallel.executors import (
    InlineExecutor,
    ProcessPoolBackend,
    SocketExecutor,
    make_executor,
    wire,
)
from repro.parallel.executors.worker import parse_address, run_worker
from repro.parallel.faults import FaultPolicy, run_tasks

BACKENDS = ["inline", "pool", "socket"]


# ----------------------------------------------------------------------
# Module-level workers (pickleable into processes and over the wire)
# ----------------------------------------------------------------------
def _double(x):
    return 2 * x


def _boom_if_odd(x):
    if x % 2 == 1:
        raise ValueError(f"odd input {x}")
    return x


def _flaky_via_file(payload):
    """Fails until the attempt-counter file reaches the threshold."""
    path, fail_times, value = payload
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("x")
    with open(path, "r", encoding="utf-8") as handle:
        attempts = len(handle.read())
    if attempts <= fail_times:
        raise RuntimeError(f"transient failure on attempt {attempts}")
    return value


def _sleep_seconds(x):
    time.sleep(x)
    return x


def _ctx_scaled(payload, context):
    """Batch-context consumer: index into broadcast state."""
    return float(context["arr"][payload]) * context["scale"]


def _log_then_echo(payload):
    """Appends its id to a file (exactly-once probe) and echoes it.

    The payload drags a large array along purely to make the dispatch
    frame outgrow kernel socket buffers, so a peer that stops reading
    stalls the coordinator's send mid-frame.
    """
    path, value, arr = payload
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(f"{value}\n")
    time.sleep(0.3)
    return (value, float(arr[0]))


def _exit_if_marked(x):
    """Simulates a segfaulting/OOM-killed worker for one payload."""
    if x == "die":
        os._exit(13)
    time.sleep(0.05)
    return x


# Workers are spawned, not forked: by the time these tests run, the
# pytest process has had pool-manager threads, and forking a threaded
# parent can deadlock the child on an inherited lock before it ever
# connects.
_MP = multiprocessing.get_context("spawn")


def _worker_entry(host, port, name):
    # Diagnostic watchdog: under heavy load a spawn child can wedge in
    # interpreter start-up before it ever registers.  Dump where it is
    # (lands in pytest's captured stderr) so such hangs are
    # attributable; _spawn_fleet routes around the wedged process.
    faulthandler.dump_traceback_later(20.0, repeat=False)
    run_worker(host, port, name=name)


def _spawn_worker(port, name):
    proc = _MP.Process(
        target=_worker_entry,
        args=("127.0.0.1", port, name),
        daemon=True,
    )
    proc.start()
    return proc


def _registered_names(executor):
    with executor._lock:
        return [wid.rsplit("#", 1)[0] for wid in executor._workers]


def _spawn_fleet(executor, names, deadline_s=60.0, grace_s=15.0):
    """Spawn one worker per name and wait until that many registered.

    Acts as the supervisor a real deployment would have: a child that
    dies before saying hello is respawned, and one that wedges during
    start-up (seen on heavily loaded hosts) is routed around with an
    extra same-named process after ``grace_s``.  Returns ``(procs,
    live)``: every process ever spawned (for reaping) and the current
    holder of each name slot.
    """
    _, port = executor.address
    live = [_spawn_worker(port, name) for name in names]
    procs = list(live)
    deadline = time.monotonic() + deadline_s
    boost_at = time.monotonic() + grace_s
    boosted = False
    while executor.n_workers() < len(names) and time.monotonic() < deadline:
        registered = _registered_names(executor)
        for k, name in enumerate(names):
            if live[k].exitcode is not None and name not in registered:
                live[k] = _spawn_worker(port, name)
                procs.append(live[k])
        if not boosted and time.monotonic() >= boost_at:
            boosted = True
            for name in names:
                if name not in registered:
                    procs.append(_spawn_worker(port, name))
        time.sleep(0.1)
    return procs, live


def _reap(procs):
    """Make sure no worker process outlives its test.

    A leftover worker keeps retrying its (ephemeral) port for up to
    30s and can collide with a later test that gets the same port, so
    escalate until each child is definitely gone and reaped.
    """
    for proc in procs:
        proc.join(timeout=5.0)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=2.0)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=2.0)


@contextlib.contextmanager
def backend(kind, n_workers=2):
    """Yield a started backend of ``kind`` (socket: with live workers)."""
    if kind == "inline":
        executor = InlineExecutor()
        try:
            yield executor
        finally:
            executor.shutdown()
        return
    if kind == "pool":
        executor = ProcessPoolBackend(max_workers=n_workers)
        try:
            yield executor
        finally:
            executor.shutdown()
        return
    executor = SocketExecutor(port=0, min_workers=n_workers, worker_wait=60.0)
    procs, _ = _spawn_fleet(executor, [f"w{k}" for k in range(n_workers)])
    try:
        yield executor
    finally:
        executor.shutdown()
        _reap(procs)


def signature(outcomes):
    """Backend-independent fingerprint of a TaskOutcome stream."""
    return [
        (o.task_id, o.ok, o.result, o.failure.kind if o.failure else None, o.attempts)
        for o in outcomes
    ]


# ----------------------------------------------------------------------
# Fast conformance (no timeouts, no crashes)
# ----------------------------------------------------------------------
class TestConformance:
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_results_in_input_order(self, kind):
        with backend(kind) as executor:
            outcomes = run_tasks(_double, [3, 1, 2], executor=executor)
        assert [o.result for o in outcomes] == [6, 2, 4]
        assert all(o.ok and o.attempts == 1 for o in outcomes)

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_failures_captured_not_raised(self, kind):
        with backend(kind) as executor:
            outcomes = run_tasks(_boom_if_odd, [0, 1, 2, 3], executor=executor)
        assert [o.ok for o in outcomes] == [True, False, True, False]
        failure = outcomes[1].failure
        assert failure.kind == "error"
        assert failure.error_type == "ValueError"
        assert "odd input 1" in failure.message

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_retry_recovers_transient_failure(self, kind, tmp_path):
        counter = tmp_path / f"attempts-{kind}"
        policy = FaultPolicy(max_retries=2, retry_backoff=0.0)
        with backend(kind) as executor:
            (outcome,) = run_tasks(
                _flaky_via_file, [(str(counter), 2, "ok")],
                policy=policy, executor=executor,
            )
        assert outcome.ok
        assert outcome.result == "ok"
        assert outcome.attempts == 3

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_on_outcome_stream_covers_every_task(self, kind):
        seen = []
        with backend(kind) as executor:
            run_tasks(
                _double, [1, 2, 3], task_ids=["a", "b", "c"],
                on_outcome=lambda o: seen.append(o.task_id), executor=executor,
            )
        assert sorted(seen) == ["a", "b", "c"]

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_worker_attribution(self, kind):
        with backend(kind) as executor:
            outcomes = run_tasks(_double, [1, 2, 3, 4], executor=executor)
        workers = {o.worker for o in outcomes}
        assert None not in workers
        if kind == "inline":
            assert workers == {"inline"}
        elif kind == "pool":
            assert all(w.startswith("pid:") for w in workers)
        else:
            assert all(w.startswith("w") for w in workers)

    def test_identical_outcome_streams_across_backends(self, tmp_path):
        """The conformance claim itself: same batch, same signatures."""
        policy = FaultPolicy(max_retries=1, retry_backoff=0.0)
        streams = {}
        for kind in BACKENDS:
            with backend(kind) as executor:
                streams[kind] = signature(run_tasks(
                    _boom_if_odd, [0, 1, 2, 3, 4],
                    task_ids=[f"t{i}" for i in range(5)],
                    policy=policy, executor=executor,
                ))
        assert streams["inline"] == streams["pool"] == streams["socket"]

    def test_executor_reuse_across_batches(self):
        """One started fleet serves several run_tasks calls (scan + resume)."""
        with backend("socket") as executor:
            first = run_tasks(_double, [1, 2], executor=executor)
            second = run_tasks(_double, [5], executor=executor)
        assert [o.result for o in first] == [2, 4]
        assert second[0].result == 10

    def test_make_executor_names(self):
        assert isinstance(make_executor("inline"), InlineExecutor)
        assert isinstance(make_executor("pool", max_workers=2), ProcessPoolBackend)
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("carrier-pigeon")

    def test_parse_address(self):
        assert parse_address("10.0.0.2:7733") == ("10.0.0.2", 7733)
        with pytest.raises(ValueError):
            parse_address("no-port")


class TestSocketSpecifics:
    def test_start_without_workers_raises(self):
        executor = SocketExecutor(port=0, min_workers=1, worker_wait=0.3)
        try:
            with pytest.raises(RuntimeError, match="worker"):
                run_tasks(_double, [1], executor=executor)
        finally:
            executor.shutdown()

    def test_address_is_concrete(self):
        executor = SocketExecutor(port=0)
        try:
            host, port = executor.address
            assert host == "127.0.0.1"
            assert port > 0
        finally:
            executor.shutdown()


# ----------------------------------------------------------------------
# Broadcast context: one-shot shared state reaches fn on every backend
# ----------------------------------------------------------------------
class TestContextBroadcast:
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_context_reaches_fn(self, kind):
        context = {"arr": np.arange(8, dtype=np.float64), "scale": 3}
        with backend(kind) as executor:
            outcomes = run_tasks(
                _ctx_scaled, [0, 3, 7], executor=executor, context=context
            )
        assert [o.result for o in outcomes] == [0.0, 9.0, 21.0]

    def test_socket_rebroadcasts_new_batch_context(self):
        """A reused fleet must see each batch's own context (epoch bump),
        and the data plane must bill it as broadcast, not per-task."""
        with backend("socket") as executor:
            first = run_tasks(
                _ctx_scaled, [1], executor=executor,
                context={"arr": np.array([0.0, 2.0]), "scale": 2},
            )
            second = run_tasks(
                _ctx_scaled, [1], executor=executor,
                context={"arr": np.array([0.0, 2.0]), "scale": 5},
            )
            stats = executor.wire_stats()
        assert first[0].result == 4.0
        assert second[0].result == 10.0
        # One delivery per (batch, touched worker): at least the two
        # dispatching workers; per-task frames stay index-sized.
        assert stats["broadcasts"] >= 2
        assert stats["tasks_dispatched"] == 2
        assert stats["task_bytes_mean"] < stats["broadcast_bytes"]

    def test_pool_context_replaced_between_batches(self):
        """Pool workers attach the *current* batch's shared-memory
        segment even when they cached the previous one."""
        with backend("pool") as executor:
            first = run_tasks(
                _ctx_scaled, [1], executor=executor,
                context={"arr": np.array([0.0, 2.0]), "scale": 2},
            )
            second = run_tasks(
                _ctx_scaled, [1], executor=executor,
                context={"arr": np.array([0.0, 2.0]), "scale": 5},
            )
        assert first[0].result == 4.0
        assert second[0].result == 10.0


# ----------------------------------------------------------------------
# PR 6 regressions: dispatch-stall attribution and worker idle exit
# ----------------------------------------------------------------------
def _connect_wedged_peer(port, name="wedge"):
    """A hostile 'worker': completes the hello handshake, then never
    reads again — the coordinator's next dispatch to it wedges."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=10.0)
    wire.send_frame(sock, wire.MSG_HELLO, 0, {"worker": name, "pid": 0})
    return sock


class TestWorkerIdleTimeout:
    def test_worker_exits_on_silent_coordinator(self):
        """Regression: the task-loop read had no timeout, so a hung
        coordinator (accepts, never speaks) wedged workers forever
        while their heartbeats kept flowing."""
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.bind(("127.0.0.1", 0))
        server.listen()
        port = server.getsockname()[1]
        held = []
        threading.Thread(
            target=lambda: held.append(server.accept()[0]), daemon=True
        ).start()
        result = {}

        def probe():
            result["done"] = run_worker(
                "127.0.0.1", port, name="idle-probe",
                connect_timeout=10.0, idle_timeout=1.0,
            )

        thread = threading.Thread(target=probe, daemon=True)
        start = time.perf_counter()
        thread.start()
        thread.join(timeout=15.0)
        try:
            assert not thread.is_alive(), "worker wedged behind silent coordinator"
            assert result["done"] == 0
            assert time.perf_counter() - start < 10.0
        finally:
            for conn in held:
                conn.close()
            server.close()


@pytest.mark.slow
class TestDispatchStallExactlyOnce:
    def test_mid_send_stall_charges_attempt_no_duplicate(self, tmp_path):
        """Regression for the duplicate-execution bug: a dispatch that
        times out mid-``sendall`` (peer stopped reading) must be charged
        as an attributed crash — never silently requeued — and under a
        retry policy every task still executes exactly once."""
        log = tmp_path / "executions.log"
        policy = FaultPolicy(max_retries=2, retry_backoff=0.0)
        executor = SocketExecutor(
            port=0, min_workers=1, worker_wait=60.0, heartbeat_timeout=3.0
        )
        procs, _ = _spawn_fleet(executor, ["real"])
        peer = _connect_wedged_peer(executor.address[1])
        deadline = time.monotonic() + 30.0
        while executor.n_workers() < 2 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert executor.n_workers() == 2, "wedged peer failed to register"
        # 64 MB of payload per task: comfortably beyond loopback socket
        # buffering, so the send to the wedged peer cannot complete.
        big = np.zeros(8_000_000, dtype=np.float64)
        payloads = [(str(log), k, big) for k in range(6)]
        try:
            outcomes = run_tasks(
                _log_then_echo, payloads, policy=policy, executor=executor
            )
        finally:
            peer.close()
            executor.shutdown()
            _reap(procs)
        assert all(o.ok for o in outcomes), [o.failure for o in outcomes]
        assert [o.result for o in outcomes] == [(k, 0.0) for k in range(6)]
        # Exactly-once: each task's side effect happened a single time
        # even though one dispatch crashed and was retried.
        ran = sorted(int(line) for line in log.read_text().splitlines())
        assert ran == list(range(6))
        # The stalled dispatch was charged an attempt (crash), not
        # silently requeued as if it had never run.
        assert sum(o.attempts for o in outcomes) == len(payloads) + 1


# ----------------------------------------------------------------------
# Slow conformance: hang-timeout and crash kinds
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestFaultKindsAcrossBackends:
    @pytest.mark.parametrize("kind", ["pool", "socket"])
    def test_hung_task_times_out_without_masking_others(self, kind):
        policy = FaultPolicy(task_timeout=1.5)
        start = time.perf_counter()
        with backend(kind) as executor:
            outcomes = run_tasks(
                _sleep_seconds, [30.0, 0.05, 0.05, 0.05],
                policy=policy, executor=executor,
            )
        wall = time.perf_counter() - start
        assert not outcomes[0].ok
        assert outcomes[0].failure.kind == "timeout"
        assert "task_timeout" in outcomes[0].failure.message
        assert all(o.ok for o in outcomes[1:])
        # The 30s sleeper was abandoned, not awaited.
        assert wall < 15.0

    @pytest.mark.parametrize("kind", ["pool", "socket"])
    def test_worker_crash_recovers_surviving_tasks(self, kind):
        payloads = ["a", "die", "b", "c", "d"]
        with backend(kind) as executor:
            outcomes = run_tasks(_exit_if_marked, payloads, executor=executor)
        by_payload = dict(zip(payloads, outcomes))
        assert not by_payload["die"].ok
        assert by_payload["die"].failure.kind == "pool"
        for key in ("a", "b", "c", "d"):
            assert by_payload[key].ok, f"{key}: {by_payload[key].failure}"
            assert by_payload[key].result == key

    def test_sigkilled_worker_mid_batch_retries_on_survivor(self):
        """The distributed acceptance case: kill one of two workers while
        the batch runs; retries land on the survivor and the batch
        completes with every result intact."""
        policy = FaultPolicy(max_retries=2, retry_backoff=0.0)
        executor = SocketExecutor(port=0, min_workers=2, worker_wait=60.0)
        procs, live = _spawn_fleet(executor, ["victim", "survivor"])
        victim = live[0]
        killed = []

        def kill_victim_once(outcome):
            if not killed:
                killed.append(True)
                os.kill(victim.pid, signal.SIGKILL)

        try:
            outcomes = run_tasks(
                _sleep_seconds, [0.3] * 8,
                policy=policy, on_outcome=kill_victim_once, executor=executor,
            )
        finally:
            executor.shutdown()
            _reap(procs)
        assert all(o.ok for o in outcomes)
        assert {o.result for o in outcomes} == {0.3}
        # Whatever the victim dropped was re-run (as a pool-kind retry).
        assert any(o.worker and o.worker.startswith("survivor") for o in outcomes)


# ----------------------------------------------------------------------
# Gene-level acceptance: distributed scans match the pool bit-for-bit
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def gene():
    from repro.alignment.simulate import simulate_alignment
    from repro.models.branch_site import BranchSiteModelA
    from repro.trees.newick import parse_newick

    tree = parse_newick("((A:0.2,B:0.1):0.08 #1,(C:0.15,D:0.12):0.05,E:0.3);")
    values = {"kappa": 2.2, "omega0": 0.2, "omega2": 4.0, "p0": 0.5, "p1": 0.3}
    sim = simulate_alignment(tree, BranchSiteModelA(), values, n_codons=60, seed=5)
    return tree, sim.alignment


def _gene_jobs(gene, n):
    from repro.parallel.batch import GeneJob

    tree, alignment = gene
    return [GeneJob.from_objects(f"g{k}", tree, alignment) for k in range(n)]


def _result_fingerprint(result):
    return (
        result.gene_id, result.lnl0, result.lnl1, result.statistic,
        result.pvalue, result.iterations, result.n_evaluations,
        result.attempts, result.error,
    )


@pytest.mark.slow
class TestDistributedAcceptance:
    def test_socket_scan_numerically_identical_to_pool(self, gene, tmp_path):
        """ISSUE acceptance: a two-worker socket scan produces the same
        report and journal (modulo worker identity and wall clock) as
        the process-pool backend on the same seed."""
        from repro.io.results_io import ResultJournal
        from repro.parallel.batch import analyze_genes

        jobs = _gene_jobs(gene, 3)
        pool_journal = tmp_path / "pool.jsonl"
        with backend("pool") as executor:
            via_pool = analyze_genes(
                jobs, max_iterations=1, seed=23,
                journal=str(pool_journal), executor=executor,
            )
        socket_journal = tmp_path / "socket.jsonl"
        with backend("socket") as executor:
            via_socket = analyze_genes(
                jobs, max_iterations=1, seed=23,
                journal=str(socket_journal), executor=executor,
            )
        assert [_result_fingerprint(r) for r in via_pool] == [
            _result_fingerprint(r) for r in via_socket
        ]
        # Journals append in completion order, which two workers make
        # nondeterministic — compare them gene-by-gene, not line-by-line.
        pool_entries = ResultJournal(str(pool_journal)).load()
        socket_entries = ResultJournal(str(socket_journal)).load()
        assert sorted(_result_fingerprint(r) for r in pool_entries) == sorted(
            _result_fingerprint(r) for r in socket_entries
        )
        # And the socket run really was distributed.
        assert any(r.worker and r.worker.startswith("w") for r in via_socket)

    def test_map_payloads_bit_identical_across_backends(self, gene):
        """PR 10 acceptance: ``--map`` draws from a seed-keyed generator
        inside the worker, so the sampled histories cannot depend on
        which process ran the task — inline, pool and socket backends
        must emit bit-identical mapping payloads (timing aside)."""
        from repro.parallel.batch import analyze_genes

        jobs = _gene_jobs(gene, 2)
        payloads = {}
        for kind in BACKENDS:
            with backend(kind) as executor:
                results = analyze_genes(
                    jobs, max_iterations=1, seed=23, map_samples=4,
                    executor=executor,
                )
            assert all(not r.failed for r in results)
            snapshot = []
            for r in results:
                mapping = dict(r.mapping)
                assert "error" not in mapping
                assert mapping["method"] == "batched"
                assert mapping["mapping_ci"]["level"] == 0.95
                mapping.pop("seconds")  # wall clock is per-host noise
                snapshot.append((r.gene_id, mapping))
            payloads[kind] = snapshot
        assert payloads["inline"] == payloads["pool"] == payloads["socket"]

    def test_sigkilled_worker_leaves_resumable_journal(self, gene, tmp_path):
        """ISSUE acceptance: SIGKILL one of two workers mid-batch; the
        run completes anyway and its journal resumes cleanly (nothing
        recomputed on resume)."""
        from repro.io.results_io import ResultJournal
        from repro.parallel.batch import analyze_genes

        jobs = _gene_jobs(gene, 5)
        journal = tmp_path / "scan.jsonl"
        policy = FaultPolicy(max_retries=2, retry_backoff=0.0)
        executor = SocketExecutor(port=0, min_workers=2, worker_wait=60.0)
        procs, live = _spawn_fleet(executor, ["victim", "survivor"])
        victim = live[0]
        killed = []

        def kill_victim_once(index, result):
            if not killed:
                killed.append(True)
                os.kill(victim.pid, signal.SIGKILL)

        try:
            results = analyze_genes(
                jobs, max_iterations=1, seed=23, policy=policy,
                journal=str(journal), on_result=kill_victim_once,
                executor=executor,
            )
        finally:
            executor.shutdown()
            _reap(procs)
        assert all(not r.failed for r in results)
        assert ResultJournal(str(journal)).completed().keys() == {
            job.gene_id for job in jobs
        }
        # Resume recomputes nothing: every gene comes back from the journal.
        resumed = analyze_genes(
            jobs, max_iterations=1, seed=23,
            journal=str(journal), resume=True,
        )
        by_id = {r.gene_id: r for r in results}
        for r in resumed:
            assert r.lnl1 == by_id[r.gene_id].lnl1
            assert r.n_evaluations == by_id[r.gene_id].n_evaluations
