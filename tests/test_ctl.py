"""CodeML control-file parsing and writing."""

import pytest

from repro.io.ctl import ControlFile, parse_ctl, parse_ctl_text, write_ctl

EXAMPLE = """
      seqfile = gene.phy  * the alignment
     treefile = gene.nwk
      outfile = results.mlc

        model = 2
      NSsites = 2
    fix_omega = 1   * H0
        omega = 1.0
        kappa = 2.5
    CodonFreq = 3
    cleandata = 1
"""


class TestParse:
    def test_example(self):
        ctl = parse_ctl_text(EXAMPLE)
        assert ctl.seqfile == "gene.phy"
        assert ctl.treefile == "gene.nwk"
        assert ctl.fix_omega == 1
        assert ctl.hypothesis == "H0"
        assert ctl.kappa == 2.5
        assert ctl.codon_freq == 3
        assert ctl.freq_method == "f61"
        assert ctl.cleandata == 1

    def test_defaults(self):
        ctl = parse_ctl_text("seqfile = a.phy\ntreefile = a.nwk\n")
        assert ctl.model == 2 and ctl.nssites == 2
        assert ctl.engine == "slim"
        assert ctl.hypothesis == "H1"
        assert ctl.freq_method == "f3x4"

    def test_comments_stripped(self):
        ctl = parse_ctl_text("kappa = 3.0 * start value\n* a full comment line\n")
        assert ctl.kappa == 3.0

    def test_case_insensitive_keys(self):
        ctl = parse_ctl_text("CODONFREQ = 1\nFix_Omega = 1\n")
        assert ctl.codon_freq == 1 and ctl.fix_omega == 1

    def test_unknown_keys_collected(self):
        ctl = parse_ctl_text("ndata = 5\nRateAncestor = 1\n")
        assert ctl.unknown == {"ndata": "5", "RateAncestor": "1"}

    def test_extension_keys(self):
        ctl = parse_ctl_text("engine = codeml\nmax_iterations = 42\nseed = 7\n")
        assert ctl.engine == "codeml"
        assert ctl.max_iterations == 42
        assert ctl.seed == 7

    def test_missing_equals_rejected(self):
        with pytest.raises(ValueError, match="key = value"):
            parse_ctl_text("seqfile gene.phy\n")

    def test_bad_cast_rejected(self):
        with pytest.raises(ValueError, match="cannot parse"):
            parse_ctl_text("kappa = fast\n")


class TestValidation:
    def test_wrong_model_rejected(self):
        with pytest.raises(ValueError, match="model = 2"):
            parse_ctl_text("model = 0\n")

    def test_wrong_nssites_rejected(self):
        with pytest.raises(ValueError, match="NSsites = 2"):
            parse_ctl_text("NSsites = 8\n")

    def test_bad_fix_omega(self):
        with pytest.raises(ValueError, match="fix_omega"):
            parse_ctl_text("fix_omega = 2\n")

    def test_bad_codon_freq(self):
        with pytest.raises(ValueError, match="CodonFreq"):
            parse_ctl_text("CodonFreq = 9\n")

    def test_nonuniversal_code_rejected(self):
        with pytest.raises(ValueError, match="icode"):
            parse_ctl_text("icode = 1\n")

    def test_bad_iteration_budget(self):
        with pytest.raises(ValueError, match="max_iterations"):
            ControlFile(max_iterations=0)


class TestRoundTrip:
    def test_write_then_parse(self, tmp_path):
        ctl = ControlFile(
            seqfile="x.phy",
            treefile="x.nwk",
            fix_omega=1,
            kappa=3.5,
            codon_freq=1,
            engine="slim-v2",
            max_iterations=77,
            seed=13,
        )
        path = tmp_path / "x.ctl"
        write_ctl(ctl, path)
        again = parse_ctl(path)
        assert again.seqfile == ctl.seqfile
        assert again.fix_omega == ctl.fix_omega
        assert again.kappa == ctl.kappa
        assert again.codon_freq == ctl.codon_freq
        assert again.engine == ctl.engine
        assert again.max_iterations == ctl.max_iterations
        assert again.seed == ctl.seed
