"""JSON result serialisation."""

import json

import numpy as np
import pytest

from repro.io.results_io import (
    JOURNAL_VERSION,
    SCHEMA_VERSION,
    ResultJournal,
    fit_from_dict,
    fit_to_dict,
    gene_result_from_dict,
    gene_result_to_dict,
    read_json_result,
    branch_site_test_from_dict,
    branch_site_test_to_dict,
    write_json_result,
)
from repro.optimize.lrt import likelihood_ratio_test
from repro.optimize.ml import BranchSiteTest, FitResult
from repro.parallel.batch import GeneResult
from repro.parallel.faults import TaskFailure


def _ok_result(gene_id="g1", lnl1=-100.0, n_evaluations=42):
    return GeneResult(
        gene_id=gene_id, lnl0=-105.0, lnl1=lnl1, statistic=10.0,
        pvalue=0.0015, iterations=12, runtime_seconds=0.8,
        n_evaluations=n_evaluations, attempts=1,
    )


def _failed_result(gene_id="g1", kind="error"):
    failure = TaskFailure(
        task_id=gene_id, kind=kind, error_type="RuntimeError",
        message="boom", attempts=2,
    )
    return GeneResult.from_failure(failure)


@pytest.fixture
def fit():
    return FitResult(
        model_name="branch-site model A (H1)",
        engine_name="slim",
        lnl=-1234.567890123,
        values={"kappa": 2.5, "omega0": 0.3, "omega2": 4.0, "p0": 0.5, "p1": 0.3},
        branch_lengths=np.array([0.1, 0.2, 0.3]),
        n_iterations=42,
        n_evaluations=731,
        runtime_seconds=12.5,
        converged=True,
        message="gradient norm small",
    )


@pytest.fixture
def bstest(fit):
    h0 = FitResult(
        model_name="branch-site model A (H0, omega2=1)",
        engine_name="slim",
        lnl=-1240.0,
        values={"kappa": 2.5, "omega0": 0.3, "p0": 0.5, "p1": 0.3},
        branch_lengths=np.array([0.1, 0.2, 0.3]),
        n_iterations=40,
        n_evaluations=700,
        runtime_seconds=11.0,
        converged=True,
        message="ok",
    )
    return BranchSiteTest(h0=h0, h1=fit, lrt=likelihood_ratio_test(-1240.0, fit.lnl))


class TestFitRoundTrip:
    def test_exact_roundtrip(self, fit):
        back = fit_from_dict(fit_to_dict(fit))
        assert back.lnl == fit.lnl
        assert back.values == fit.values
        assert np.array_equal(back.branch_lengths, fit.branch_lengths)
        assert back.n_iterations == fit.n_iterations
        assert back.converged is True

    def test_json_serialisable(self, fit):
        text = json.dumps(fit_to_dict(fit))
        assert "branch-site" in text

    def test_schema_checked(self, fit):
        payload = fit_to_dict(fit)
        payload["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            fit_from_dict(payload)

    def test_kind_checked(self, fit):
        payload = fit_to_dict(fit)
        payload["kind"] = "something_else"
        with pytest.raises(ValueError, match="expected a 'fit'"):
            fit_from_dict(payload)


class TestTestRoundTrip:
    def test_roundtrip(self, bstest):
        back = branch_site_test_from_dict(branch_site_test_to_dict(bstest))
        assert back.h0.lnl == bstest.h0.lnl
        assert back.h1.lnl == bstest.h1.lnl
        assert back.lrt.statistic == pytest.approx(bstest.lrt.statistic)
        assert back.lrt.pvalue_chi2 == pytest.approx(bstest.lrt.pvalue_chi2)
        assert back.combined_iterations == bstest.combined_iterations


class TestFiles:
    def test_write_read_fit(self, fit, tmp_path):
        path = tmp_path / "fit.json"
        write_json_result(path, fit)
        back = read_json_result(path)
        assert isinstance(back, FitResult)
        assert back.lnl == fit.lnl

    def test_write_read_test(self, bstest, tmp_path):
        path = tmp_path / "test.json"
        write_json_result(path, bstest)
        back = read_json_result(path)
        assert isinstance(back, BranchSiteTest)
        assert back.lrt.df == 1

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"schema": SCHEMA_VERSION, "kind": "mystery"}))
        with pytest.raises(ValueError, match="unknown result kind"):
            read_json_result(path)

    def test_file_content_versioned(self, fit, tmp_path):
        path = tmp_path / "fit.json"
        write_json_result(path, fit)
        payload = json.loads(path.read_text())
        assert payload["schema"] == SCHEMA_VERSION


class TestGeneResultRoundTrip:
    def test_success_roundtrip(self):
        res = _ok_result()
        back = gene_result_from_dict(gene_result_to_dict(res))
        assert back.gene_id == res.gene_id
        assert back.lnl1 == res.lnl1
        assert back.n_evaluations == res.n_evaluations
        assert not back.failed
        assert back.failure is None

    def test_failure_roundtrip_keeps_structure(self):
        res = _failed_result(kind="timeout")
        payload = gene_result_to_dict(res)
        # NaN numerics must serialise as JSON null, not the invalid NaN token.
        text = json.dumps(payload)
        assert "NaN" not in text
        back = gene_result_from_dict(json.loads(text))
        assert back.failed
        assert np.isnan(back.lnl1) and np.isnan(back.pvalue)
        assert back.failure.kind == "timeout"
        assert back.failure.attempts == 2
        assert "boom" in back.error

    def test_kind_checked(self):
        payload = gene_result_to_dict(_ok_result())
        payload["kind"] = "fit"
        with pytest.raises(ValueError, match="gene_result"):
            gene_result_from_dict(payload)


class TestResultJournal:
    def test_append_load_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with ResultJournal(str(path)) as journal:
            journal.append(_ok_result("g0"))
            journal.append(_failed_result("g1"))
            journal.append(_ok_result("g2"))
        entries = ResultJournal(str(path)).load()
        assert [e.gene_id for e in entries] == ["g0", "g1", "g2"]
        assert [e.failed for e in entries] == [False, True, False]

    def test_completed_excludes_failures(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with ResultJournal(str(path)) as journal:
            journal.append(_ok_result("g0"))
            journal.append(_failed_result("g1"))
        done = ResultJournal(str(path)).completed()
        assert set(done) == {"g0"}

    def test_later_failure_supersedes_success(self, tmp_path):
        # A re-run that failed must force recomputation even if an older
        # success for the same gene sits earlier in the journal.
        path = tmp_path / "j.jsonl"
        with ResultJournal(str(path)) as journal:
            journal.append(_ok_result("g0"))
            journal.append(_failed_result("g0"))
        assert ResultJournal(str(path)).completed() == {}

    def test_later_success_supersedes_earlier(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with ResultJournal(str(path)) as journal:
            journal.append(_ok_result("g0", lnl1=-100.0))
            journal.append(_ok_result("g0", lnl1=-90.0))
        done = ResultJournal(str(path)).completed()
        assert done["g0"].lnl1 == -90.0

    def test_truncated_final_line_tolerated(self, tmp_path):
        # A killed run can leave a half-written last record; resume must
        # drop it silently and treat that gene as unfinished.
        path = tmp_path / "j.jsonl"
        with ResultJournal(str(path)) as journal:
            journal.append(_ok_result("g0"))
            journal.append(_ok_result("g1"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": 1, "kind": "gene_result", "gene_id": "g2"')
        entries = ResultJournal(str(path)).load()
        assert [e.gene_id for e in entries] == ["g0", "g1"]
        assert set(ResultJournal(str(path)).completed()) == {"g0", "g1"}

    def test_corrupt_middle_line_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with ResultJournal(str(path)) as journal:
            journal.append(_ok_result("g0"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json\n")
        with ResultJournal(str(path)) as journal:
            journal.append(_ok_result("g1"))
        with pytest.raises(ValueError, match="corrupt journal"):
            ResultJournal(str(path)).load()

    def test_missing_file_is_empty(self, tmp_path):
        journal = ResultJournal(str(tmp_path / "absent.jsonl"))
        assert journal.load() == []
        assert journal.completed() == {}

    def test_append_is_durable_per_record(self, tmp_path):
        # Each append must be visible to a concurrent reader immediately
        # (flush+fsync) — that is the whole point of the checkpoint.
        path = tmp_path / "j.jsonl"
        with ResultJournal(str(path)) as journal:
            journal.append(_ok_result("g0"))
            assert len(ResultJournal(str(path)).load()) == 1
            journal.append(_ok_result("g1"))
            assert len(ResultJournal(str(path)).load()) == 2


class TestJournalVersioning:
    def test_fresh_journal_starts_with_versioned_header(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with ResultJournal(str(path)) as journal:
            journal.append(_ok_result("g0"))
        first = json.loads(path.read_text().splitlines()[0])
        assert first["kind"] == "journal_header"
        assert first["version"] == JOURNAL_VERSION
        assert first["schema"] == SCHEMA_VERSION

    def test_header_written_once_across_reopens(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with ResultJournal(str(path)) as journal:
            journal.append(_ok_result("g0"))
        with ResultJournal(str(path)) as journal:
            journal.append(_ok_result("g1"))
        headers = [
            line for line in path.read_text().splitlines()
            if json.loads(line).get("kind") == "journal_header"
        ]
        assert len(headers) == 1

    def test_headerless_v1_journal_still_loads(self, tmp_path):
        # Journals written before the header existed must stay resumable.
        path = tmp_path / "old.jsonl"
        record = gene_result_to_dict(_ok_result("g0"))
        path.write_text(json.dumps(record) + "\n")
        entries = ResultJournal(str(path)).load()
        assert [e.gene_id for e in entries] == ["g0"]

    def test_unknown_record_kind_skipped(self, tmp_path):
        # A newer writer may add record kinds; the reader must skip, not die.
        path = tmp_path / "j.jsonl"
        with ResultJournal(str(path)) as journal:
            journal.append(_ok_result("g0"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"kind": "scan_checkpoint", "at": 3}) + "\n")
        entries = ResultJournal(str(path)).load()
        assert [e.gene_id for e in entries] == ["g0"]

    def test_unknown_record_keys_ignored(self, tmp_path):
        # A newer writer may add fields to gene_result records too.
        path = tmp_path / "j.jsonl"
        record = gene_result_to_dict(_ok_result("g0"))
        record["carbon_footprint_grams"] = 12.5
        path.write_text(json.dumps(record) + "\n")
        entries = ResultJournal(str(path)).load()
        assert entries[0].gene_id == "g0"
        assert entries[0].lnl1 == -100.0

    def test_newer_journal_version_refused(self, tmp_path):
        path = tmp_path / "future.jsonl"
        header = {"kind": "journal_header", "schema": SCHEMA_VERSION,
                  "version": JOURNAL_VERSION + 1}
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(ValueError, match="newer than"):
            ResultJournal(str(path)).load()

    def test_worker_identity_roundtrips(self, tmp_path):
        path = tmp_path / "j.jsonl"
        res = _ok_result("g0")
        res.worker = "node7:pid123"
        with ResultJournal(str(path)) as journal:
            journal.append(res)
        (entry,) = ResultJournal(str(path)).load()
        assert entry.worker == "node7:pid123"
