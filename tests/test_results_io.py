"""JSON result serialisation."""

import json

import numpy as np
import pytest

from repro.io.results_io import (
    SCHEMA_VERSION,
    fit_from_dict,
    fit_to_dict,
    read_json_result,
    branch_site_test_from_dict,
    branch_site_test_to_dict,
    write_json_result,
)
from repro.optimize.lrt import likelihood_ratio_test
from repro.optimize.ml import BranchSiteTest, FitResult


@pytest.fixture
def fit():
    return FitResult(
        model_name="branch-site model A (H1)",
        engine_name="slim",
        lnl=-1234.567890123,
        values={"kappa": 2.5, "omega0": 0.3, "omega2": 4.0, "p0": 0.5, "p1": 0.3},
        branch_lengths=np.array([0.1, 0.2, 0.3]),
        n_iterations=42,
        n_evaluations=731,
        runtime_seconds=12.5,
        converged=True,
        message="gradient norm small",
    )


@pytest.fixture
def bstest(fit):
    h0 = FitResult(
        model_name="branch-site model A (H0, omega2=1)",
        engine_name="slim",
        lnl=-1240.0,
        values={"kappa": 2.5, "omega0": 0.3, "p0": 0.5, "p1": 0.3},
        branch_lengths=np.array([0.1, 0.2, 0.3]),
        n_iterations=40,
        n_evaluations=700,
        runtime_seconds=11.0,
        converged=True,
        message="ok",
    )
    return BranchSiteTest(h0=h0, h1=fit, lrt=likelihood_ratio_test(-1240.0, fit.lnl))


class TestFitRoundTrip:
    def test_exact_roundtrip(self, fit):
        back = fit_from_dict(fit_to_dict(fit))
        assert back.lnl == fit.lnl
        assert back.values == fit.values
        assert np.array_equal(back.branch_lengths, fit.branch_lengths)
        assert back.n_iterations == fit.n_iterations
        assert back.converged is True

    def test_json_serialisable(self, fit):
        text = json.dumps(fit_to_dict(fit))
        assert "branch-site" in text

    def test_schema_checked(self, fit):
        payload = fit_to_dict(fit)
        payload["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            fit_from_dict(payload)

    def test_kind_checked(self, fit):
        payload = fit_to_dict(fit)
        payload["kind"] = "something_else"
        with pytest.raises(ValueError, match="expected a 'fit'"):
            fit_from_dict(payload)


class TestTestRoundTrip:
    def test_roundtrip(self, bstest):
        back = branch_site_test_from_dict(branch_site_test_to_dict(bstest))
        assert back.h0.lnl == bstest.h0.lnl
        assert back.h1.lnl == bstest.h1.lnl
        assert back.lrt.statistic == pytest.approx(bstest.lrt.statistic)
        assert back.lrt.pvalue_chi2 == pytest.approx(bstest.lrt.pvalue_chi2)
        assert back.combined_iterations == bstest.combined_iterations


class TestFiles:
    def test_write_read_fit(self, fit, tmp_path):
        path = tmp_path / "fit.json"
        write_json_result(path, fit)
        back = read_json_result(path)
        assert isinstance(back, FitResult)
        assert back.lnl == fit.lnl

    def test_write_read_test(self, bstest, tmp_path):
        path = tmp_path / "test.json"
        write_json_result(path, bstest)
        back = read_json_result(path)
        assert isinstance(back, BranchSiteTest)
        assert back.lrt.df == 1

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"schema": SCHEMA_VERSION, "kind": "mystery"}))
        with pytest.raises(ValueError, match="unknown result kind"):
            read_json_result(path)

    def test_file_content_versioned(self, fit, tmp_path):
        path = tmp_path / "fit.json"
        write_json_result(path, fit)
        payload = json.loads(path.read_text())
        assert payload["schema"] == SCHEMA_VERSION
