"""Newick parsing/writing, PAML marks, and error reporting."""

import pytest

from repro.trees.newick import NewickError, parse_newick, write_newick


class TestParseBasics:
    def test_simple_unrooted(self):
        tree = parse_newick("(A:0.1,B:0.2,C:0.3);")
        assert tree.n_leaves == 3
        assert tree.n_branches == 3
        assert sorted(tree.leaf_names()) == ["A", "B", "C"]

    def test_nested(self):
        tree = parse_newick("((A:0.1,B:0.2):0.05,C:0.3,D:0.4);")
        assert tree.n_leaves == 4
        assert tree.n_branches == 5

    def test_lengths(self):
        tree = parse_newick("(A:0.125,B:2e-3,C:1.5E2);")
        lengths = sorted(n.length for n in tree.leaves)
        assert lengths == [0.002, 0.125, 150.0]

    def test_missing_lengths_default_zero(self):
        tree = parse_newick("(A,B,C);")
        assert all(n.length == 0.0 for n in tree.leaves)

    def test_internal_names(self):
        tree = parse_newick("((A,B)AB:0.1,C,D);")
        assert tree.find("AB").length == pytest.approx(0.1)

    def test_quoted_labels(self):
        tree = parse_newick("('Homo sapiens':0.1,B:0.2,C:0.3);")
        assert "Homo sapiens" in tree.leaf_names()

    def test_comments_skipped(self):
        tree = parse_newick("[&R] (A:0.1, [note] B:0.2, C:0.3);")
        assert tree.n_leaves == 3

    def test_whitespace_tolerant(self):
        tree = parse_newick("  ( A : 0.1 ,\n B : 0.2 , C : 0.3 ) ;  ")
        assert tree.n_leaves == 3


class TestPamlMarks:
    def test_hash_mark_after_length(self):
        tree = parse_newick("((A:0.1,B:0.2):0.05 #1,C:0.3,D:0.4);")
        fg = tree.foreground_nodes()
        assert len(fg) == 1 and not fg[0].is_leaf

    def test_hash_mark_before_length(self):
        tree = parse_newick("((A:0.1,B:0.2)#1:0.05,C:0.3,D:0.4);")
        assert len(tree.foreground_nodes()) == 1

    def test_hash_zero_is_background(self):
        tree = parse_newick("(A:0.1 #0,B:0.2,C:0.3);")
        assert tree.foreground_nodes() == []

    def test_leaf_mark(self):
        tree = parse_newick("(A:0.1 #1,B:0.2,C:0.3);")
        assert tree.foreground_nodes()[0].name == "A"

    def test_clade_mark_expands(self):
        tree = parse_newick("((A:0.1,B:0.2)$1:0.05,C:0.3,D:0.4);")
        # Stem + both leaves inside.
        assert len(tree.foreground_nodes()) == 3

    def test_duplicate_mark_rejected(self):
        with pytest.raises(NewickError, match="duplicate branch mark"):
            parse_newick("(A:0.1 #1 #1,B:0.2,C:0.3);")


class TestErrors:
    @pytest.mark.parametrize(
        "text,fragment",
        [
            ("(A,B,C)", "missing terminating"),
            ("(A,B,C); trailing", "trailing characters"),
            ("(A,B,C;", "expected"),
            ("(A:,B,C);", "invalid number"),
            ("(A:-0.5,B,C);", "negative branch length"),
            ("(A,B,C) [unclosed;", "unterminated"),
            ("((,),A);", "taxon label"),
        ],
    )
    def test_malformed(self, text, fragment):
        with pytest.raises(NewickError, match=fragment):
            parse_newick(text)

    def test_error_carries_position(self):
        try:
            parse_newick("(A:bad,B,C);")
        except NewickError as err:
            assert err.position >= 3
        else:
            pytest.fail("expected NewickError")

    def test_duplicate_leaf_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate leaf names"):
            parse_newick("(A:0.1,A:0.2,C:0.3);")


class TestWrite:
    def test_roundtrip_topology_and_lengths(self):
        text = "((A:0.1,B:0.2):0.05 #1,(C:0.3,D:0.1):0.02,E:0.4);"
        tree = parse_newick(text)
        again = parse_newick(write_newick(tree))
        assert sorted(again.leaf_names()) == sorted(tree.leaf_names())
        assert again.n_branches == tree.n_branches
        assert len(again.foreground_nodes()) == 1
        assert again.total_tree_length() == pytest.approx(tree.total_tree_length())

    def test_write_without_lengths(self):
        tree = parse_newick("(A:0.1,B:0.2,C:0.3);")
        out = write_newick(tree, lengths=False)
        assert ":" not in out

    def test_write_without_marks(self):
        tree = parse_newick("(A:0.1 #1,B:0.2,C:0.3);")
        assert "#" not in write_newick(tree, marks=False)
