"""Second property-test wave: new substrates and cross-module invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.models.branch import TwoRatioModel
from repro.models.m0 import M0Model
from repro.models.sites import M1aModel, M2aModel
from repro.trees.least_squares import least_squares_branch_lengths
from repro.trees.prune import prune_to_taxa
from repro.trees.simulate import simulate_yule_tree
from repro.trees.stats import patristic_distance_matrix

seeds = st.integers(min_value=0, max_value=2**31 - 1)

_slow = settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])


class TestPruneProperties:
    @_slow
    @given(seed=seeds, n=st.integers(min_value=5, max_value=25),
           k=st.integers(min_value=3, max_value=10))
    def test_patristic_distances_invariant_under_pruning(self, seed, n, k):
        k = min(k, n)
        tree = simulate_yule_tree(n, seed=seed)
        rng = np.random.default_rng(seed)
        keep = list(rng.choice(tree.leaf_names(), size=k, replace=False))
        pruned = prune_to_taxa(tree, keep)

        full = patristic_distance_matrix(tree)
        names = tree.leaf_names()
        sub_expected = np.array(
            [[full[names.index(a), names.index(b)] for b in pruned.leaf_names()]
             for a in pruned.leaf_names()]
        )
        sub_actual = patristic_distance_matrix(pruned)
        assert np.allclose(sub_actual, sub_expected, atol=1e-10)

    @_slow
    @given(seed=seeds, n=st.integers(min_value=5, max_value=20))
    def test_pruned_tree_is_valid(self, seed, n):
        tree = simulate_yule_tree(n, seed=seed)
        keep = tree.leaf_names()[: max(3, n // 2)]
        pruned = prune_to_taxa(tree, keep)
        assert pruned.is_binary()
        assert pruned.n_branches == 2 * len(keep) - 3
        pruned.validate_branch_lengths()


class TestLeastSquaresProperties:
    @_slow
    @given(seed=seeds, n=st.integers(min_value=4, max_value=15))
    def test_exact_on_additive_distances(self, seed, n):
        tree = simulate_yule_tree(n, seed=seed)
        dist = patristic_distance_matrix(tree)
        recovered = least_squares_branch_lengths(tree, dist)
        assert np.allclose(recovered, np.maximum(tree.branch_lengths(), 1e-6), atol=1e-7)

    @_slow
    @given(seed=seeds, scale=st.floats(min_value=0.1, max_value=10.0))
    def test_scaling_equivariance(self, seed, scale):
        tree = simulate_yule_tree(7, seed=seed)
        dist = patristic_distance_matrix(tree)
        base = least_squares_branch_lengths(tree, dist)
        scaled = least_squares_branch_lengths(tree, scale * dist)
        assert np.allclose(scaled, np.maximum(scale * base, 1e-6), rtol=1e-6, atol=1e-6)


class TestModelTransformsExtended:
    @settings(max_examples=40, deadline=None)
    @given(x=st.lists(st.floats(min_value=-25, max_value=25), min_size=3, max_size=3))
    def test_two_ratio_unpack_valid(self, x):
        model = TwoRatioModel()
        values = model.unpack(np.array(x))
        assert values["kappa"] > 0
        assert values["omega_background"] > 0
        assert values["omega_foreground"] > 0
        model.check_roundtrip(values, atol=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(x=st.lists(st.floats(min_value=-25, max_value=25), min_size=5, max_size=5))
    def test_m2a_proportions_simplex(self, x):
        model = M2aModel()
        values = model.unpack(np.array(x))
        props = model.proportions(values)
        assert np.all(props >= 0) and props.sum() == pytest.approx(1.0)
        assert values["omega2"] >= 1.0

    @settings(max_examples=40, deadline=None)
    @given(x=st.lists(st.floats(min_value=-25, max_value=25), min_size=3, max_size=3))
    def test_m1a_roundtrip(self, x):
        model = M1aModel()
        values = model.unpack(np.array(x))
        model.check_roundtrip(values, atol=1e-6)


class TestNg86Properties:
    @_slow
    @given(seed=seeds)
    def test_symmetry_in_sequence_order(self, seed):
        from repro.alignment.distances import nei_gojobori
        from repro.alignment.msa import CodonAlignment

        rng = np.random.default_rng(seed)
        states = rng.integers(0, 61, size=(2, 30)).astype(np.int32)
        aln = CodonAlignment(names=["a", "b"], states=states)
        fwd = nei_gojobori(aln, 0, 1)
        rev = nei_gojobori(aln, 1, 0)
        assert fwd.ds == pytest.approx(rev.ds)
        assert fwd.dn == pytest.approx(rev.dn)

    @_slow
    @given(seed=seeds)
    def test_weighted_equals_expanded(self, seed):
        from repro.alignment.distances import nei_gojobori
        from repro.alignment.msa import CodonAlignment
        from repro.alignment.patterns import compress_patterns

        rng = np.random.default_rng(seed)
        # Few distinct columns so compression actually bites.
        base = rng.integers(0, 61, size=(2, 4)).astype(np.int32)
        cols = rng.integers(0, 4, size=25)
        states = base[:, cols]
        aln = CodonAlignment(names=["a", "b"], states=states)
        pat = compress_patterns(aln)
        direct = nei_gojobori(aln, 0, 1)
        weighted = nei_gojobori(pat.alignment, 0, 1, column_weights=pat.weights)
        assert weighted.ds == pytest.approx(direct.ds, abs=1e-12)
        assert weighted.dn == pytest.approx(direct.dn, abs=1e-12)


class TestSerializationProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        lnl=st.floats(min_value=-1e8, max_value=0, allow_nan=False),
        iters=st.integers(min_value=0, max_value=10_000),
        lengths=st.lists(st.floats(min_value=0, max_value=10), min_size=1, max_size=20),
    )
    def test_fit_roundtrip_arbitrary_values(self, lnl, iters, lengths):
        from repro.io.results_io import fit_from_dict, fit_to_dict
        from repro.optimize.ml import FitResult

        fit = FitResult(
            model_name="m",
            engine_name="slim",
            lnl=lnl,
            values={"kappa": 2.0},
            branch_lengths=np.array(lengths),
            n_iterations=iters,
            n_evaluations=iters * 3,
            runtime_seconds=1.0,
            converged=True,
            message="ok",
        )
        back = fit_from_dict(fit_to_dict(fit))
        assert back.lnl == fit.lnl
        assert np.array_equal(back.branch_lengths, fit.branch_lengths)
