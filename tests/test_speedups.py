"""§IV-2 speedup formulas."""

import pytest

from repro.utils.speedups import combined_speedup, overall_speedup, per_iteration_speedup


class TestOverall:
    def test_basic_ratio(self):
        # Paper's dataset iv: 52822 s -> 8298 s is the headline 6.4 combined;
        # overall formula is the plain ratio.
        assert overall_speedup(52822, 8298) == pytest.approx(6.37, abs=0.01)

    def test_identity(self):
        assert overall_speedup(10.0, 10.0) == 1.0

    def test_slower_is_below_one(self):
        assert overall_speedup(1.0, 2.0) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            overall_speedup(0.0, 1.0)
        with pytest.raises(ValueError):
            overall_speedup(1.0, -1.0)


class TestPerIteration:
    def test_normalises_by_iterations(self):
        # Paper dataset iv H0: 52822 s / 1039 iters vs 8298 s / 509 iters
        # (Table III): Si = (50.84) / (16.30) ≈ 3.1 (Table IV says 3.3
        # for H0 alone; combined H0+H1 is 3.1).
        si = per_iteration_speedup(52822, 1039, 8298, 509)
        assert si == pytest.approx(3.12, abs=0.02)

    def test_same_iterations_reduces_to_overall(self):
        assert per_iteration_speedup(10.0, 7, 5.0, 7) == overall_speedup(10.0, 5.0)

    def test_zero_iterations_treated_as_one(self):
        assert per_iteration_speedup(2.0, 0, 1.0, 1) == 2.0

    def test_iteration_advantage_discounted(self):
        # The optimized code was faster overall partly via fewer
        # iterations; Si removes that component.
        so = overall_speedup(100.0, 25.0)
        si = per_iteration_speedup(100.0, 100, 25.0, 50)
        assert so == 4.0
        assert si == 2.0


class TestCombined:
    def test_sum_of_hypotheses(self):
        assert combined_speedup(30.0, 70.0, 10.0, 40.0) == 2.0

    def test_paper_dataset_i(self):
        # Table III dataset i: 85 s -> 43 s combined = 2.0 (Table IV).
        assert combined_speedup(42.5, 42.5, 21.5, 21.5) == pytest.approx(1.98, abs=0.01)
