"""M0 and the site models M1a/M2a (the §V-B extension models)."""

import numpy as np
import pytest

from repro.models.m0 import M0Model
from repro.models.sites import M1aModel, M2aModel

ALL_MODELS = [M0Model(), M1aModel(), M2aModel()]


class TestM0:
    def test_single_class(self):
        m = M0Model()
        classes = m.site_classes({"kappa": 2.0, "omega": 0.7})
        assert len(classes) == 1
        assert classes[0].proportion == 1.0
        assert classes[0].omega_background == classes[0].omega_foreground == 0.7

    def test_roundtrip(self):
        M0Model().check_roundtrip({"kappa": 3.3, "omega": 1.8})

    def test_omega_above_one_allowed(self):
        v = M0Model().unpack(np.array([0.5, 2.0]))
        assert v["omega"] > 1.0


class TestM1a:
    def test_two_classes(self):
        m = M1aModel()
        classes = m.site_classes({"kappa": 2.0, "omega0": 0.2, "p0": 0.7})
        assert [c.label for c in classes] == ["0", "1"]
        assert classes[0].proportion == pytest.approx(0.7)
        assert classes[1].omega_background == 1.0

    def test_roundtrip(self):
        M1aModel().check_roundtrip({"kappa": 2.0, "omega0": 0.45, "p0": 0.61})

    def test_no_branch_heterogeneity(self):
        classes = M1aModel().site_classes({"kappa": 2.0, "omega0": 0.2, "p0": 0.7})
        assert all(c.omega_background == c.omega_foreground for c in classes)


class TestM2a:
    def test_three_classes(self):
        m = M2aModel()
        v = {"kappa": 2.0, "omega0": 0.2, "omega2": 3.0, "p0": 0.6, "p1": 0.3}
        classes = m.site_classes(v)
        assert [c.label for c in classes] == ["0", "1", "2"]
        assert classes[2].proportion == pytest.approx(0.1)
        assert classes[2].omega_background == 3.0

    def test_roundtrip(self):
        M2aModel().check_roundtrip(
            {"kappa": 2.0, "omega0": 0.2, "omega2": 3.0, "p0": 0.6, "p1": 0.3}
        )

    def test_omega2_above_one(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            v = M2aModel().unpack(rng.normal(scale=4, size=5))
            assert v["omega2"] > 1.0


@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
class TestCommonContract:
    def test_default_start_roundtrips(self, model):
        model.check_roundtrip(model.default_start())

    def test_seeded_start_reproducible(self, model):
        assert model.default_start(rng=7) == model.default_start(rng=7)

    def test_proportions_sum_to_one(self, model):
        assert model.proportions(model.default_start()).sum() == pytest.approx(1.0)

    def test_pack_length_matches_params(self, model):
        assert model.pack(model.default_start()).shape == (model.n_params,)
