"""Codon alignment encoding: states, gaps, ambiguity, stops."""

import numpy as np
import pytest

from repro.alignment.msa import AMBIGUOUS, MISSING, CodonAlignment
from repro.codon.genetic_code import UNIVERSAL


class TestEncoding:
    def test_exact_codons(self):
        aln = CodonAlignment.from_sequences(["x", "y"], ["ATGTTT", "ATGCCC"])
        idx = UNIVERSAL.codon_index
        assert aln.states[0, 0] == idx["ATG"]
        assert aln.states[0, 1] == idx["TTT"]
        assert aln.states[1, 1] == idx["CCC"]
        assert aln.n_taxa == 2 and aln.n_codons == 2

    def test_gap_codon_is_missing(self):
        aln = CodonAlignment.from_sequences(["x"], ["---"])
        assert aln.states[0, 0] == MISSING

    def test_nnn_is_missing(self):
        aln = CodonAlignment.from_sequences(["x"], ["NNN"])
        assert aln.states[0, 0] == MISSING

    def test_partial_ambiguity(self):
        # ATR = {ATA (Ile), ATG (Met)}.
        aln = CodonAlignment.from_sequences(["x"], ["ATR"])
        assert aln.states[0, 0] == AMBIGUOUS
        idx = UNIVERSAL.codon_index
        assert aln.ambiguity_sets[(0, 0)] == tuple(sorted([idx["ATA"], idx["ATG"]]))

    def test_ambiguity_resolving_to_single_codon(self):
        # TGR = {TGA (stop), TGG (Trp)} -> only TGG is sense.
        aln = CodonAlignment.from_sequences(["x"], ["TGR"])
        assert aln.states[0, 0] == UNIVERSAL.codon_index["TGG"]

    def test_ambiguity_only_stops_rejected(self):
        # TAR = {TAA, TAG}: both stops.
        with pytest.raises(ValueError, match="stop"):
            CodonAlignment.from_sequences(["x"], ["TAR"])

    def test_rna_and_lowercase(self):
        aln = CodonAlignment.from_sequences(["x"], ["augUUU"])
        idx = UNIVERSAL.codon_index
        assert aln.states[0, 0] == idx["ATG"]
        assert aln.states[0, 1] == idx["TTT"]

    def test_stop_codon_raises_by_default(self):
        with pytest.raises(ValueError, match="stop codon 'TAA'"):
            CodonAlignment.from_sequences(["x"], ["TAA"])

    def test_stop_codon_maskable(self):
        aln = CodonAlignment.from_sequences(["x"], ["TAA"], on_stop="missing")
        assert aln.states[0, 0] == MISSING

    def test_unknown_symbol_rejected(self):
        with pytest.raises(ValueError, match="unknown nucleotide"):
            CodonAlignment.from_sequences(["x"], ["AT!"])


class TestValidation:
    def test_unequal_lengths(self):
        with pytest.raises(ValueError, match="unequal"):
            CodonAlignment.from_sequences(["x", "y"], ["ATG", "ATGTTT"])

    def test_frame(self):
        with pytest.raises(ValueError, match="multiple of 3"):
            CodonAlignment.from_sequences(["x"], ["ATGA"])

    def test_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            CodonAlignment.from_sequences(["x", "x"], ["ATG", "ATG"])

    def test_name_count_mismatch(self):
        with pytest.raises(ValueError):
            CodonAlignment.from_sequences(["x"], ["ATG", "CCC"])

    def test_empty(self):
        with pytest.raises(ValueError, match="empty"):
            CodonAlignment.from_sequences([], [])

    def test_bad_on_stop(self):
        with pytest.raises(ValueError, match="on_stop"):
            CodonAlignment.from_sequences(["x"], ["ATG"], on_stop="explode")


class TestLeafClv:
    def test_exact_state_indicator(self):
        aln = CodonAlignment.from_sequences(["x"], ["ATG"])
        clv = aln.leaf_clv(0, 0)
        assert clv.sum() == 1.0
        assert clv[UNIVERSAL.codon_index["ATG"]] == 1.0

    def test_missing_all_ones(self):
        aln = CodonAlignment.from_sequences(["x"], ["---"])
        assert np.all(aln.leaf_clv(0, 0) == 1.0)

    def test_ambiguous_indicator_set(self):
        aln = CodonAlignment.from_sequences(["x"], ["ATR"])
        clv = aln.leaf_clv(0, 0)
        assert clv.sum() == 2.0


class TestRoundTripAndViews:
    def test_to_sequences_roundtrip(self):
        seqs = ["ATGTTTCCC", "ATG---AAA"]
        aln = CodonAlignment.from_sequences(["x", "y"], seqs)
        assert aln.to_sequences() == seqs

    def test_row_lookup(self):
        aln = CodonAlignment.from_sequences(["x", "y"], ["ATG", "CCC"])
        assert aln.row("y") == 1
        with pytest.raises(KeyError):
            aln.row("z")

    def test_subset_taxa_reorders(self):
        aln = CodonAlignment.from_sequences(["x", "y", "z"], ["ATG", "CCC", "ATR"])
        sub = aln.subset_taxa(["z", "x"])
        assert sub.names == ["z", "x"]
        assert sub.states[0, 0] == AMBIGUOUS
        assert (0, 0) in sub.ambiguity_sets

    def test_drop_incomplete_columns(self):
        aln = CodonAlignment.from_sequences(["x", "y"], ["ATG---CCC", "ATGTTTNNN"])
        clean = aln.drop_incomplete_columns()
        assert clean.n_codons == 1
        assert clean.states[0, 0] == UNIVERSAL.codon_index["ATG"]
