"""ML fit driver: packing, iteration counting, H0+H1 orchestration."""

import numpy as np
import pytest

from repro.core.engine import make_engine
from repro.models.m0 import M0Model
from repro.optimize.ml import fit_branch_site_test, fit_model


@pytest.fixture(scope="module")
def m0_bound(small_tree, small_sim):
    return make_engine("slim").bind(small_tree, small_sim.alignment, M0Model())


# Session fixtures come from conftest; redeclare at module scope for reuse.
@pytest.fixture(scope="module")
def small_tree():
    from repro.trees.newick import parse_newick

    return parse_newick("((A:0.2,B:0.1):0.08 #1,(C:0.15,D:0.12):0.05,E:0.3);")


@pytest.fixture(scope="module")
def small_sim(small_tree):
    from repro.alignment.simulate import simulate_alignment
    from repro.models.branch_site import BranchSiteModelA

    values = {"kappa": 2.5, "omega0": 0.3, "omega2": 4.0, "p0": 0.5, "p1": 0.3}
    return simulate_alignment(small_tree, BranchSiteModelA(), values, n_codons=100, seed=7)


class TestFitModel:
    def test_improves_from_start(self, m0_bound):
        start = {"kappa": 1.0, "omega": 1.0}
        lnl_start = m0_bound.log_likelihood(start)
        fit = fit_model(m0_bound, start_values=start, max_iterations=15)
        assert fit.lnl > lnl_start

    def test_iteration_budget(self, m0_bound):
        fit = fit_model(m0_bound, max_iterations=3, seed=1)
        assert fit.n_iterations <= 3

    def test_seed_reproducible(self, m0_bound):
        a = fit_model(m0_bound, max_iterations=4, seed=9)
        b = fit_model(m0_bound, max_iterations=4, seed=9)
        assert a.lnl == b.lnl
        assert a.values == b.values

    def test_fixed_branch_lengths(self, m0_bound, small_tree):
        fit = fit_model(
            m0_bound, max_iterations=5, seed=1, optimize_branch_lengths=False
        )
        assert fit.branch_lengths == pytest.approx(np.asarray(small_tree.branch_lengths()))

    def test_branch_lengths_optimized_by_default(self, m0_bound, small_tree):
        fit = fit_model(m0_bound, max_iterations=10, seed=1)
        assert fit.branch_lengths.shape == (small_tree.n_branches,)
        assert not np.allclose(fit.branch_lengths, small_tree.branch_lengths())

    def test_lbfgsb_backend_agrees(self, m0_bound):
        ours = fit_model(m0_bound, seed=2, max_iterations=100, method="bfgs")
        scipys = fit_model(m0_bound, seed=2, max_iterations=100, method="lbfgsb")
        assert ours.lnl == pytest.approx(scipys.lnl, abs=0.05)

    def test_unknown_method(self, m0_bound):
        with pytest.raises(ValueError, match="unknown method"):
            fit_model(m0_bound, method="genetic-algorithm")

    def test_summary_text(self, m0_bound):
        fit = fit_model(m0_bound, max_iterations=2, seed=1)
        text = fit.summary()
        assert "lnL" in text and "iterations" in text and "kappa" in text


class TestBranchSiteTest:
    @pytest.fixture(scope="class")
    def test_result(self, small_tree, small_sim):
        engine = make_engine("slim")
        return fit_branch_site_test(
            lambda m: engine.bind(small_tree, small_sim.alignment, m),
            seed=1,
            max_iterations=8,
        )

    def test_h0_nested_in_h1(self, test_result):
        # H0 ⊂ H1, so with a warm start lnL1 >= lnL0 (up to optimizer slack).
        assert test_result.h1.lnl >= test_result.h0.lnl - 1e-6

    def test_lrt_consistency(self, test_result):
        assert test_result.lrt.statistic == pytest.approx(
            max(0.0, 2 * (test_result.h1.lnl - test_result.h0.lnl))
        )

    def test_model_names(self, test_result):
        assert "H0" in test_result.h0.model_name
        assert "H1" in test_result.h1.model_name

    def test_combined_quantities(self, test_result):
        assert test_result.combined_iterations == (
            test_result.h0.n_iterations + test_result.h1.n_iterations
        )
        assert test_result.combined_runtime == pytest.approx(
            test_result.h0.runtime_seconds + test_result.h1.runtime_seconds
        )

    def test_summary(self, test_result):
        text = test_result.summary()
        assert "LRT" in text and "p(χ²₁)" in text

    def test_engines_start_identically(self, small_tree, small_sim):
        # The fixed-seed rule (§IV): identical seeds -> identical start
        # points -> engines' first likelihoods match to machine precision.
        from repro.models.branch_site import BranchSiteModelA

        model = BranchSiteModelA(fix_omega2=True)
        start_a = model.default_start(np.random.default_rng(5))
        start_b = model.default_start(np.random.default_rng(5))
        assert start_a == start_b
