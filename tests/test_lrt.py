"""Likelihood ratio test arithmetic."""

import pytest
import scipy.stats

from repro.optimize.lrt import likelihood_ratio_test


class TestLRT:
    def test_statistic(self):
        res = likelihood_ratio_test(-1010.0, -1005.0)
        assert res.statistic == pytest.approx(10.0)
        assert res.df == 1

    def test_chi2_pvalue(self):
        res = likelihood_ratio_test(-1010.0, -1005.0)
        assert res.pvalue_chi2 == pytest.approx(scipy.stats.chi2.sf(10.0, 1))

    def test_mixture_pvalue_is_half(self):
        res = likelihood_ratio_test(-1010.0, -1005.0)
        assert res.pvalue_mixture == pytest.approx(res.pvalue_chi2 / 2)

    def test_negative_statistic_clamped(self):
        res = likelihood_ratio_test(-1000.0, -1000.5)
        assert res.statistic == 0.0
        assert res.pvalue_chi2 == 1.0
        assert res.pvalue_mixture == 1.0

    def test_zero_statistic(self):
        res = likelihood_ratio_test(-1000.0, -1000.0)
        assert res.statistic == 0.0
        assert not res.significant()

    def test_significance_threshold(self):
        # 2*delta = 3.84 is the 5% critical value of chi2_1.
        just_below = likelihood_ratio_test(0.0, 3.84 / 2 - 0.01)
        just_above = likelihood_ratio_test(0.0, 3.84 / 2 + 0.01)
        assert not just_below.significant(0.05)
        assert just_above.significant(0.05)

    def test_mixture_less_conservative(self):
        # A statistic significant under the mixture but not under chi2.
        res = likelihood_ratio_test(0.0, 3.2 / 2)
        assert res.significant(0.05, conservative=False)
        assert not res.significant(0.05, conservative=True)

    def test_df_validated(self):
        with pytest.raises(ValueError):
            likelihood_ratio_test(-1.0, 0.0, df=0)

    def test_higher_df(self):
        res = likelihood_ratio_test(-10.0, -5.0, df=2)
        assert res.pvalue_chi2 == pytest.approx(scipy.stats.chi2.sf(10.0, 2))
