"""Tree pruning to taxon subsets (the Fig. 3 subsampling operation)."""

import pytest

from repro.trees.newick import parse_newick, write_newick
from repro.trees.prune import prune_to_taxa
from repro.trees.simulate import simulate_yule_tree


@pytest.fixture
def tree():
    return parse_newick(
        "(((A:0.1,B:0.2):0.05,C:0.3):0.07 #1,(D:0.15,E:0.25):0.02,F:0.4);"
    )


def _patristic(tree, a, b):
    """Leaf-to-leaf path length via parent chains."""
    def ancestors(node):
        chain = []
        while node is not None:
            chain.append(node)
            node = node.parent
        return chain

    pa, pb = ancestors(tree.find(a)), ancestors(tree.find(b))
    ids_b = {id(n): i for i, n in enumerate(pb)}
    for i, node in enumerate(pa):
        if id(node) in ids_b:
            dist = sum(n.length for n in pa[:i]) + sum(n.length for n in pb[: ids_b[id(node)]])
            return dist
    raise AssertionError("no common ancestor")


class TestBasics:
    def test_keeps_requested_taxa(self, tree):
        pruned = prune_to_taxa(tree, ["A", "C", "F"])
        assert sorted(pruned.leaf_names()) == ["A", "C", "F"]

    def test_result_is_unrooted_binary(self, tree):
        pruned = prune_to_taxa(tree, ["A", "B", "D", "F"])
        assert pruned.is_binary()
        assert pruned.n_branches == 2 * 4 - 3

    def test_original_untouched(self, tree):
        before = write_newick(tree)
        prune_to_taxa(tree, ["A", "C", "F"])
        assert write_newick(tree) == before

    def test_patristic_distances_preserved(self, tree):
        keep = ["A", "C", "E", "F"]
        pruned = prune_to_taxa(tree, keep)
        for i, a in enumerate(keep):
            for b in keep[i + 1 :]:
                assert _patristic(pruned, a, b) == pytest.approx(
                    _patristic(tree, a, b), abs=1e-12
                )

    def test_two_taxa(self, tree):
        pruned = prune_to_taxa(tree, ["A", "F"])
        assert sorted(pruned.leaf_names()) == ["A", "F"]
        assert _patristic(pruned, "A", "F") == pytest.approx(_patristic(tree, "A", "F"))


class TestForegroundMarks:
    def test_mark_survives_when_split_remains(self, tree):
        # fg is the stem of (A,B,C); keeping A and D preserves the split.
        pruned = prune_to_taxa(tree, ["A", "D", "F"])
        assert len(pruned.foreground_nodes()) == 1

    def test_mark_absorbed_into_merged_branch(self, tree):
        # Keeping only A on the foreground side: the stem merges into A's
        # terminal branch, which inherits the mark.
        pruned = prune_to_taxa(tree, ["A", "D"])
        fg = pruned.foreground_nodes()
        assert len(fg) == 1
        assert fg[0].name == "A"

    def test_mark_disappears_with_its_clade(self, tree):
        pruned = prune_to_taxa(tree, ["D", "E", "F"])
        assert pruned.foreground_nodes() == []


class TestValidation:
    def test_unknown_taxon(self, tree):
        with pytest.raises(ValueError, match="not in tree"):
            prune_to_taxa(tree, ["A", "Z"])

    def test_duplicates(self, tree):
        with pytest.raises(ValueError, match="duplicate"):
            prune_to_taxa(tree, ["A", "A"])

    def test_too_few(self, tree):
        with pytest.raises(ValueError, match="at least two"):
            prune_to_taxa(tree, ["A"])


class TestLikelihoodConsistency:
    def test_pruning_equals_missing_data(self):
        """Dropping taxa must equal marking them missing (Felsenstein)."""
        import numpy as np

        from repro.alignment.msa import CodonAlignment
        from repro.alignment.simulate import simulate_alignment
        from repro.core.engine import make_engine
        from repro.models.m0 import M0Model

        tree = simulate_yule_tree(6, seed=3, mean_branch_length=0.15)
        values = {"kappa": 2.0, "omega": 0.5}
        sim = simulate_alignment(tree, M0Model(), values, 40, seed=4)
        pi = np.full(61, 1 / 61)

        keep = tree.leaf_names()[:4]
        pruned = prune_to_taxa(tree, keep)
        sub_aln = sim.alignment.subset_taxa(keep)
        lnl_pruned = (
            make_engine("slim").bind(pruned, sub_aln, M0Model(), pi=pi).log_likelihood(values)
        )

        # Same computation with the dropped taxa replaced by gap rows.
        seqs = dict(zip(sim.alignment.names, sim.alignment.to_sequences()))
        for name in tree.leaf_names():
            if name not in keep:
                seqs[name] = "-" * (sim.alignment.n_codons * 3)
        masked = CodonAlignment.from_sequences(list(seqs), list(seqs.values()))
        lnl_masked = (
            make_engine("slim").bind(tree, masked, M0Model(), pi=pi).log_likelihood(values)
        )
        assert lnl_pruned == pytest.approx(lnl_masked, abs=1e-8)
