"""Engine transition-matrix cache: stable keying, LRU eviction, counters.

The cache used to be keyed by ``id(decomp)``; after the decomposition
cache evicted an entry and the object was garbage-collected, CPython's
allocator readily hands the same address to the *next* decomposition,
silently returning a stale ``P(t)`` for different (κ, ω, scale).  The
fix keys by ``SpectralDecomposition.token`` — a process-unique monotone
sequence number that is never recycled.
"""

import gc

import numpy as np
import pytest

from repro.codon.matrix import build_rate_matrix
from repro.core.eigen import DecompositionCache, SpectralDecomposition, decompose
from repro.core.engine import make_engine
from repro.core.expm import transition_matrix_syrk

PI = np.full(61, 1 / 61)


def _decomp(omega, kappa=2.0):
    return decompose(build_rate_matrix(kappa, omega, PI))


def _clone_args(decomp):
    """Constructor kwargs reusing a decomposition's arrays (no new allocs)."""
    return dict(
        eigenvalues=decomp.eigenvalues,
        eigenvectors=decomp.eigenvectors,
        pi=decomp.pi,
        sqrt_pi=decomp.sqrt_pi,
        inv_sqrt_pi=decomp.inv_sqrt_pi,
    )


class TestTokens:
    def test_tokens_unique_and_monotone(self):
        a, b = _decomp(0.2), _decomp(0.3)
        assert a.token != b.token
        assert b.token > a.token

    def test_token_survives_identical_arrays(self):
        a = _decomp(0.2)
        clone = SpectralDecomposition(**_clone_args(a))
        assert clone.token != a.token


class TestStaleCacheRegression:
    def test_recycled_id_never_yields_stale_operator(self):
        """A garbage-collected decomposition's successor at the same
        address must not inherit its cached P(t).

        Each round drops every reference to the first decomposition
        (modelling DecompositionCache eviction of the last holder) and
        immediately constructs a different one — CPython's allocator
        then reuses the freed instance slot, so with ``id()``-keyed
        caching the second decomposition reads the first one's P(t).
        Several rounds are run because the very first allocations in a
        fresh process may not land on the recycled slot.
        """
        engine = make_engine("slim", cache_transition_matrices=True)
        t = 0.1
        gc.collect()
        for round_ in range(6):
            d1 = _decomp(0.2 + 0.01 * round_)
            op1 = engine._operator_for(d1, t)
            assert np.allclose(op1, transition_matrix_syrk(d1, t), atol=1e-12)

            tmp = _decomp(5.0 + 0.01 * round_)
            args = _clone_args(tmp)
            expected = transition_matrix_syrk(tmp, t)
            del tmp
            del d1, op1  # last references gone: the eviction moment
            d2 = SpectralDecomposition(**args)
            op2 = engine._operator_for(d2, t)
            assert np.allclose(op2, expected, atol=1e-12), (
                f"round {round_}: stale P(t) served for a recycled "
                "decomposition id — transition cache must key by token"
            )
        gc.collect()

    def test_decomposition_cache_eviction_with_gc(self):
        """End-to-end: evicting through a maxsize-1 DecompositionCache
        plus explicit gc never corrupts cached transition matrices."""
        engine = make_engine("slim", cache_transition_matrices=True)
        engine._decomp_cache = DecompositionCache(maxsize=1)
        t = 0.05
        for k in range(8):
            matrix = build_rate_matrix(2.0, 0.1 + 0.3 * k, PI)
            decomp = engine._decompose(matrix)  # evicts the previous one
            op = engine._operator_for(decomp, t)
            assert np.allclose(op, transition_matrix_syrk(decomp, t), atol=1e-12)
            del decomp, op
            gc.collect()


class TestLRUEviction:
    def test_hit_and_miss_counters(self):
        engine = make_engine("slim", cache_transition_matrices=True)
        d = _decomp(0.2)
        engine._operator_for(d, 0.1)
        engine._operator_for(d, 0.1)
        engine._operator_for(d, 0.2)
        assert engine.transition_hits == 1
        assert engine.transition_misses == 2

    def test_lru_keeps_hot_entries(self):
        engine = make_engine("slim", cache_transition_matrices=True,
                             transition_cache_size=2)
        d = _decomp(0.2)
        engine._operator_for(d, 0.1)  # miss -> {0.1}
        engine._operator_for(d, 0.2)  # miss -> {0.1, 0.2}
        engine._operator_for(d, 0.1)  # hit, refreshes 0.1
        engine._operator_for(d, 0.3)  # miss, evicts the cold 0.2
        engine._operator_for(d, 0.1)  # hit: hot entry survived eviction
        assert engine.transition_hits == 2
        engine._operator_for(d, 0.2)  # miss: 0.2 was the LRU victim
        assert engine.transition_misses == 4
        assert len(engine._transition_cache) == 2

    def test_eviction_is_incremental_not_full_clear(self):
        engine = make_engine("slim", cache_transition_matrices=True,
                             transition_cache_size=4)
        d = _decomp(0.2)
        for k in range(8):
            engine._operator_for(d, 0.01 * (k + 1))
        # A full clear() would leave 1 entry; LRU keeps the cache full.
        assert len(engine._transition_cache) == 4

    def test_cache_disabled_keeps_counters_at_zero(self):
        engine = make_engine("slim", cache_transition_matrices=False)
        d = _decomp(0.2)
        engine._operator_for(d, 0.1)
        engine._operator_for(d, 0.1)
        assert engine.transition_hits == 0
        assert engine.transition_misses == 0
        assert len(engine._transition_cache) == 0


class TestCacheStats:
    def test_stats_exposed_for_metrics(self):
        engine = make_engine("slim", cache_transition_matrices=True)
        d = _decomp(0.2)
        engine._operator_for(d, 0.1)
        engine._operator_for(d, 0.1)
        stats = engine.cache_stats()
        assert stats["transition_hits"] == 1
        assert stats["transition_misses"] == 1
        assert stats["transition_size"] == 1
        assert "decomposition_hits" in stats
        assert "decomposition_misses" in stats

    def test_stats_without_decomposition_cache(self):
        engine = make_engine("slim", cache_decompositions=False,
                             cache_transition_matrices=True)
        stats = engine.cache_stats()
        assert "decomposition_hits" not in stats
        assert stats["transition_misses"] == 0
