"""Marginal ancestral reconstruction."""

import numpy as np
import pytest

from repro.alignment.simulate import simulate_alignment
from repro.core.engine import make_engine
from repro.likelihood.ancestral import marginal_reconstruction
from repro.models.branch_site import BranchSiteModelA
from repro.models.m0 import M0Model
from repro.trees.newick import parse_newick


@pytest.fixture(scope="module")
def m0_problem():
    tree = parse_newick("((A:0.05,B:0.05):0.05,(C:0.05,D:0.05):0.05,E:0.08);")
    values = {"kappa": 2.0, "omega": 0.4}
    sim = simulate_alignment(tree, M0Model(), values, 60, seed=17)
    bound = make_engine("slim").bind(tree, sim.alignment, M0Model())
    return tree, sim, bound, values


class TestM0Reconstruction:
    def test_covers_all_internal_nodes(self, m0_problem):
        tree, sim, bound, values = m0_problem
        rec = marginal_reconstruction(bound, values)
        internal = {n.index for n in tree.nodes if not n.is_leaf}
        assert set(rec.node_indices) == internal

    def test_posteriors_valid(self, m0_problem):
        tree, sim, bound, values = m0_problem
        rec = marginal_reconstruction(bound, values)
        for node_index in rec.node_indices:
            probs = rec.best_probabilities[node_index]
            assert probs.shape == (sim.alignment.n_codons,)
            assert np.all((probs > 0) & (probs <= 1 + 1e-12))

    def test_short_branches_recover_true_ancestors(self, m0_problem):
        # With very short branches the true simulated internal states are
        # recovered almost everywhere.
        tree, sim, bound, values = m0_problem
        rec = marginal_reconstruction(bound, values)
        # simulate_alignment recorded states for every node in `states`
        # only for leaves; re-simulate to capture internals.
        from repro.utils.rng import make_rng

        # Instead check agreement with high confidence + consistency:
        root_rec = rec.best_states[tree.root.index]
        accuracy_proxy = rec.mean_confidence(tree.root.index)
        assert accuracy_proxy > 0.8

    def test_codon_sequence_decoding(self, m0_problem):
        tree, sim, bound, values = m0_problem
        rec = marginal_reconstruction(bound, values)
        seq = rec.codon_sequence(tree.root.index)
        assert len(seq) == sim.alignment.n_codons * 3
        assert set(seq) <= set("TCAG")

    def test_zero_length_tree_reproduces_observed_column(self):
        # All branch lengths ~0 and identical leaves: the ancestor is the
        # observed codon with posterior ~1.
        tree = parse_newick("((A:1e-8,B:1e-8):1e-8,C:1e-8,D:1e-8);")
        from repro.alignment.msa import CodonAlignment

        aln = CodonAlignment.from_sequences(["A", "B", "C", "D"], ["ATGTTT"] * 4)
        bound = make_engine("slim").bind(tree, aln, M0Model(), pi=np.full(61, 1 / 61))
        rec = marginal_reconstruction(bound, {"kappa": 2.0, "omega": 0.5})
        assert rec.codon_sequence(tree.root.index) == "ATGTTT"
        assert rec.mean_confidence(tree.root.index) > 0.999


class TestMixtureReconstruction:
    def test_branch_site_model_reconstruction(self):
        tree = parse_newick("((A:0.1,B:0.1):0.2 #1,(C:0.1,D:0.1):0.05,E:0.15);")
        truth = {"kappa": 2.0, "omega0": 0.1, "omega2": 6.0, "p0": 0.5, "p1": 0.3}
        sim = simulate_alignment(tree, BranchSiteModelA(), truth, 50, seed=5)
        bound = make_engine("slim").bind(tree, sim.alignment, BranchSiteModelA())
        rec = marginal_reconstruction(bound, truth)
        # A 5-taxon unrooted tree has 3 internal nodes (root included).
        assert len(rec.node_indices) == 3
        for node_index in rec.node_indices:
            assert rec.best_probabilities[node_index].min() > 0

    def test_engine_independence(self):
        tree = parse_newick("((A:0.1,B:0.1):0.2 #1,(C:0.1,D:0.1):0.05,E:0.15);")
        truth = {"kappa": 2.0, "omega0": 0.1, "omega2": 6.0, "p0": 0.5, "p1": 0.3}
        sim = simulate_alignment(tree, BranchSiteModelA(), truth, 40, seed=6)
        recs = []
        for engine_name in ("codeml", "slim-v2"):
            bound = make_engine(engine_name).bind(tree, sim.alignment, BranchSiteModelA())
            recs.append(marginal_reconstruction(bound, truth))
        for node_index in recs[0].node_indices:
            assert np.array_equal(
                recs[0].best_states[node_index], recs[1].best_states[node_index]
            )
            assert np.allclose(
                recs[0].best_probabilities[node_index],
                recs[1].best_probabilities[node_index],
                atol=1e-10,
            )
