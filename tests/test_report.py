"""Report formatting."""

import numpy as np
import pytest

from repro.io.report import format_fit_block, format_report, write_report
from repro.optimize.lrt import likelihood_ratio_test
from repro.optimize.ml import BranchSiteTest, FitResult


def _fit(model_name, lnl, values, n_branches=7, converged=True):
    return FitResult(
        model_name=model_name,
        engine_name="slim",
        lnl=lnl,
        values=values,
        branch_lengths=np.full(n_branches, 0.1),
        n_iterations=12,
        n_evaluations=150,
        runtime_seconds=1.25,
        converged=converged,
        message="gradient norm small",
    )


@pytest.fixture
def test_obj():
    h0 = _fit(
        "branch-site model A (H0, omega2=1)",
        -1010.0,
        {"kappa": 2.0, "omega0": 0.3, "p0": 0.5, "p1": 0.3},
    )
    h1 = _fit(
        "branch-site model A (H1)",
        -1003.0,
        {"kappa": 2.0, "omega0": 0.3, "omega2": 3.4, "p0": 0.5, "p1": 0.3},
    )
    return BranchSiteTest(h0=h0, h1=h1, lrt=likelihood_ratio_test(-1010.0, -1003.0))


class TestFitBlock:
    def test_contains_parameters_and_lnl(self, test_obj):
        block = format_fit_block(test_obj.h1)
        assert "lnL = -1003.000000" in block
        assert "omega2" in block
        assert "12 iterations" in block

    def test_class_table_proportions(self, test_obj):
        block = format_fit_block(test_obj.h1)
        assert "site class" in block
        assert "2a" in block and "2b" in block

    def test_unconverged_flagged(self):
        fit = _fit("m", -1.0, {"kappa": 2.0, "omega0": 0.3, "p0": 0.5, "p1": 0.3}, converged=False)
        assert "NOT CONVERGED" in format_fit_block(fit)

    def test_tree_included_when_given(self, test_obj):
        from repro.trees.newick import parse_newick

        tree = parse_newick("((A:1,B:1):1 #1,(C:1,D:1):1,E:1);")
        block = format_fit_block(test_obj.h0, tree)
        assert "#1" in block


class TestFullReport:
    def test_sections_present(self, test_obj):
        text = format_report(test_obj, dataset_name="demo")
        assert "Null hypothesis" in text
        assert "Alternative hypothesis" in text
        assert "Likelihood ratio test" in text
        assert "demo" in text
        assert "2*(lnL1 - lnL0) = 14.000000" in text

    def test_significance_stated(self, test_obj):
        assert "SUPPORTED" in format_report(test_obj)

    def test_not_significant(self):
        h0 = _fit("h0", -1000.0, {"kappa": 2.0, "omega0": 0.3, "p0": 0.5, "p1": 0.3})
        h1 = _fit("h1", -999.9, {"kappa": 2.0, "omega0": 0.3, "omega2": 1.1, "p0": 0.5, "p1": 0.3})
        test = BranchSiteTest(h0=h0, h1=h1, lrt=likelihood_ratio_test(-1000.0, -999.9))
        assert "not supported" in format_report(test)

    def test_sites_section(self, test_obj):
        from repro.optimize.beb import SiteProbabilities

        probs = np.array([0.2, 0.96, 0.999])
        sites = SiteProbabilities(
            probabilities=probs, class_probabilities=np.tile(probs, (4, 1)) / 4, method="BEB"
        )
        text = format_report(test_obj, sites=sites)
        assert "BEB" in text
        assert "2" in text and "3" in text  # 1-based selected sites
        assert "**" in text  # >0.99 marker

    def test_sites_none_selected(self, test_obj):
        from repro.optimize.beb import SiteProbabilities

        sites = SiteProbabilities(
            probabilities=np.array([0.1]), class_probabilities=np.full((4, 1), 0.025), method="NEB"
        )
        assert "no sites with posterior" in format_report(test_obj, sites=sites)

    def test_write_report(self, test_obj, tmp_path):
        path = tmp_path / "out.mlc"
        write_report(path, test_obj)
        assert "Likelihood ratio test" in path.read_text()
