"""Uniformized transition kernel (rung 4): invariants, cross-validation,
engine wiring, and fault-injected scans that must complete through it."""

import numpy as np
import pytest
import scipy.linalg

import repro.core.engine as engine_mod
from repro.alignment.simulate import simulate_alignment
from repro.codon.matrix import build_rate_matrix
from repro.core.eigen import PadeFallback, decompose
from repro.core.engine import make_engine
from repro.core.expm import transition_matrix_scipy, transition_matrix_syrk
from repro.core.recovery import NumericalError, RecoveryConfig
from repro.core.uniformization import (
    UniformizedOperator,
    poisson_truncation,
    uniformized_transition_matrix,
)
from repro.models.branch_site import BranchSiteModelA
from repro.parallel.batch import scan_branches
from repro.trees.newick import parse_newick

OMEGAS = (1e-4, 1.0, 50.0, 500.0)
TIMES = (1e-8, 1.0, 10.0, 100.0)


@pytest.fixture(scope="module")
def pi():
    rng = np.random.default_rng(11)
    raw = rng.dirichlet(np.full(61, 4.0))
    return raw / raw.sum()


class TestPoissonTruncation:
    def test_zero_rate_is_a_point_mass(self):
        w = poisson_truncation(0.0, 1e-12)
        assert w.shape == (1,) and w[0] == 1.0

    @pytest.mark.parametrize("mu_t", [0.1, 1.0, 10.0, 47.0])
    def test_tail_mass_bounded(self, mu_t):
        tol = 1e-12
        w = poisson_truncation(mu_t, tol)
        assert 1.0 - w.sum() <= tol
        assert np.all(w >= 0.0)

    def test_insufficient_terms_raises(self):
        with pytest.raises(ValueError, match="did not reach"):
            poisson_truncation(40.0, 1e-12, max_terms=10)

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError, match="finite and non-negative"):
            poisson_truncation(-1.0, 1e-12)
        with pytest.raises(ValueError, match="finite and non-negative"):
            poisson_truncation(float("nan"), 1e-12)


class TestKernelInvariants:
    """The acceptance grid: every (ω, t) cell keeps every invariant."""

    @pytest.mark.parametrize("omega", OMEGAS)
    @pytest.mark.parametrize("t", TIMES)
    def test_rows_nonnegative_and_stochastic(self, pi, omega, t):
        q = build_rate_matrix(2.0, omega, pi).q
        p = uniformized_transition_matrix(q, t, pi)
        assert np.all(p >= 0.0), f"negative entry at omega={omega}, t={t}"
        assert np.max(np.abs(p.sum(axis=1) - 1.0)) <= 1e-12

    @pytest.mark.parametrize("omega", OMEGAS)
    @pytest.mark.parametrize("t", TIMES)
    def test_agrees_with_spectral(self, pi, omega, t):
        # The uniformized P(t) must track the healthy spectral path to
        # 1e-10 max-abs everywhere on the grid — that is what qualifies
        # it as the ladder's independent witness.
        matrix = build_rate_matrix(2.0, omega, pi)
        p_spec = transition_matrix_syrk(decompose(matrix), t)
        p_uni = uniformized_transition_matrix(matrix.q, t, pi)
        assert np.max(np.abs(p_uni - p_spec)) <= 1e-10

    @pytest.mark.parametrize("omega", OMEGAS)
    @pytest.mark.parametrize("t", [1e-8, 1.0, 10.0])
    def test_agrees_with_pade(self, pi, omega, t):
        # Cross-validation against the algorithmically independent scipy
        # Padé path on the moderate grid.
        q = build_rate_matrix(2.0, omega, pi).q
        p_pade = transition_matrix_scipy(q, t)
        p_uni = uniformized_transition_matrix(q, t, pi)
        assert np.max(np.abs(p_uni - p_pade)) <= 1e-8

    def test_zero_time_is_identity(self, pi):
        q = build_rate_matrix(2.0, 1.0, pi).q
        assert np.array_equal(uniformized_transition_matrix(q, 0.0, pi), np.eye(61))


class TestUniformizedOperator:
    def test_jump_matrix_is_stochastic(self, pi):
        uni = UniformizedOperator(build_rate_matrix(2.0, 0.5, pi).q, pi)
        assert np.all(uni.r >= 0.0)
        assert np.allclose(uni.r.sum(axis=1), 1.0, atol=1e-14)
        assert uni.r_clip == 0.0  # clean generator: nothing clamped

    def test_power_cache_grows_and_is_shared(self, pi):
        uni = UniformizedOperator(build_rate_matrix(2.0, 0.5, pi).q, pi)
        assert uni.n_cached_powers == 2
        p5 = uni.power(5)
        assert uni.n_cached_powers == 6
        assert np.allclose(p5, np.linalg.matrix_power(uni.r, 5))
        uni.power(3)  # served from cache, no growth
        assert uni.n_cached_powers == 6

    def test_noisy_generator_is_clamped_and_recorded(self, pi):
        # Rung 4 sees Q rebuilt from damaged spectral factors, which can
        # carry small negative off-diagonal noise.
        q = build_rate_matrix(2.0, 0.5, pi).q.copy()
        q[0, 1] = -1e-9
        uni = UniformizedOperator(q, pi)
        assert uni.r_clip > 0.0
        assert np.all(uni.r >= 0.0)
        assert np.allclose(uni.r.sum(axis=1), 1.0, atol=1e-14)

    def test_squaring_engages_above_threshold(self, pi):
        uni = UniformizedOperator(build_rate_matrix(2.0, 0.5, pi).q, pi)
        assert uni.terms_for(1.0 / uni.mu)[1] == 0
        terms, squarings = uni.terms_for(400.0 / uni.mu)
        assert squarings >= 3
        assert terms <= 200  # squaring keeps the series short

    def test_tokens_are_unique_and_monotone(self, pi):
        q = build_rate_matrix(2.0, 0.5, pi).q
        a = UniformizedOperator(q, pi)
        b = UniformizedOperator(q, pi)
        assert b.token > a.token

    def test_rejects_bad_inputs(self, pi):
        q = build_rate_matrix(2.0, 0.5, pi).q
        with pytest.raises(ValueError, match="square"):
            UniformizedOperator(q[:, :10], pi)
        with pytest.raises(ValueError, match="finite generator"):
            UniformizedOperator(np.full((4, 4), np.nan), pi[:4])
        with pytest.raises(ValueError, match="tol"):
            UniformizedOperator(q, pi, tol=0.0)
        bad = q.copy()
        np.fill_diagonal(bad, 1.0)
        with pytest.raises(ValueError, match="positive diagonal"):
            UniformizedOperator(bad, pi)
        uni = UniformizedOperator(q, pi)
        with pytest.raises(ValueError, match="branch length"):
            uni.transition_matrix(-1.0)
        with pytest.raises(ValueError, match="power exponent"):
            uni.power(-1)

    def test_evaluation_counter(self, pi):
        uni = UniformizedOperator(build_rate_matrix(2.0, 0.5, pi).q, pi)
        uni.transition_matrix(0.5)
        uni.transition_matrix(1.5)
        assert uni.evaluations == 2


class TestRung4Wiring:
    """Engine-level behaviour: fallback, attribution, exhaustion, cache."""

    @pytest.fixture
    def fallback(self, pi):
        matrix = build_rate_matrix(2.0, 0.5, pi)
        return PadeFallback(
            q=matrix.q, pi=pi,
            ladder=(("evr", "residual 1e-5"), ("ev", "residual 2e-6")),
        )

    def test_pade_guard_failure_degrades_to_uniformization(
        self, fallback, monkeypatch
    ):
        engine = make_engine("slim", recovery=RecoveryConfig())
        monkeypatch.setattr(
            engine_mod, "transition_matrix_scipy",
            lambda q, t: np.full_like(q, -1.0),
        )
        op = engine._operator_for(fallback, 0.4)
        p = np.asarray(engine._operator_probability_matrix(op))
        ref = transition_matrix_scipy(fallback.q, 0.4)
        assert np.max(np.abs(p - ref)) < 1e-9
        events = [
            ev for ev in engine.events.events if ev.kind == "uniformization_fallback"
        ]
        assert len(events) == 1
        assert events[0].context["path"] == "pade"
        assert engine.rung_usage.get("uniformization") == 1
        assert "pade" not in engine.rung_usage

    def test_ladder_exhaustion_is_one_structured_event(self, fallback, monkeypatch):
        engine = make_engine("slim", recovery=RecoveryConfig())
        monkeypatch.setattr(
            engine_mod, "transition_matrix_scipy",
            lambda q, t: np.full_like(q, np.nan),
        )
        monkeypatch.setattr(
            UniformizedOperator, "transition_matrix",
            lambda self, t: (_ for _ in ()).throw(ValueError("series diverged")),
        )
        with pytest.raises(NumericalError, match="every recovery rung failed") as err:
            engine._operator_for(fallback, 0.4)
        # The structured error carries the whole failure history — every
        # eigensolver rejection plus the Padé and uniformization errors —
        # not the last rung's raw exception.
        message = str(err.value)
        for rung in ("evr", "ev", "pade", "uniformization"):
            assert rung in message
        assert "series diverged" in message
        exhausted = [
            ev for ev in engine.events.events if ev.kind == "ladder_exhausted"
        ]
        assert len(exhausted) == 1
        assert exhausted[0].context["rungs_failed"] == 4

    def test_rung4_disabled_reraises_the_pade_failure(self, fallback, monkeypatch):
        engine = make_engine("slim", recovery=RecoveryConfig(uniformization=False))
        monkeypatch.setattr(
            engine_mod, "transition_matrix_scipy",
            lambda q, t: np.full_like(q, -1.0),
        )
        with pytest.raises(NumericalError):
            engine._operator_for(fallback, 0.4)
        assert "uniformization" not in engine.rung_usage

    def test_cross_check_attributes_the_diverged_path(self, pi, monkeypatch):
        engine = make_engine("slim", recovery=RecoveryConfig(cross_check=True))
        decomp = engine._decompose(build_rate_matrix(2.0, 0.5, pi))
        real_build = type(engine)._build_operator

        def corrupt(self, d, t):
            bad = np.array(real_build(self, d, t), copy=True)
            bad[0, :] += 0.5  # far beyond any repair tolerance
            return bad

        monkeypatch.setattr(type(engine), "_build_operator", corrupt)
        op = engine._operator_for(decomp, 0.3)
        # Served by the witness: agrees with the honest spectral result.
        p = np.asarray(engine._operator_probability_matrix(op))
        assert np.max(np.abs(p - transition_matrix_syrk(decomp, 0.3))) < 1e-9
        checks = [
            ev for ev in engine.events.events
            if ev.kind == "uniformization_cross_check"
        ]
        assert len(checks) == 1
        # The corrupted spectral path is named; the Padé witness agrees.
        assert checks[0].context["diverged"] == "spectral"
        assert checks[0].context["dev_spectral"] > 0.4
        assert checks[0].context["dev_pade"] < 1e-8

    def test_spectral_failure_without_cross_check_still_raises(self, pi, monkeypatch):
        engine = make_engine("slim", recovery=RecoveryConfig())
        decomp = engine._decompose(build_rate_matrix(2.0, 0.5, pi))
        real_build = type(engine)._build_operator

        def corrupt(self, d, t):
            bad = np.array(real_build(self, d, t), copy=True)
            bad[0, :] += 0.5
            return bad

        monkeypatch.setattr(type(engine), "_build_operator", corrupt)
        with pytest.raises(NumericalError):
            engine._operator_for(decomp, 0.3)

    def test_pade_operators_ride_the_lru_even_with_caching_off(self, fallback):
        engine = make_engine("slim", recovery=RecoveryConfig())
        assert engine.cache_transition_matrices is False
        op1 = engine._operator_for(fallback, 0.2)
        op2 = engine._operator_for(fallback, 0.2)
        assert op1 is op2
        stats = engine.cache_stats()
        assert stats["transition_hits"] == 1
        assert stats["rung_pade"] == 1

    def test_spectral_rung_usage_is_counted(self, pi):
        engine = make_engine("slim", recovery=RecoveryConfig())
        decomp = engine._decompose(build_rate_matrix(2.0, 0.5, pi))
        engine._operator_for(decomp, 0.1)
        engine._operator_for(decomp, 0.2)
        assert engine.cache_stats()["rung_evr"] == 2


@pytest.fixture(scope="module")
def scan_problem():
    tree = parse_newick("((A:0.2,B:0.1):0.08 #1,(C:0.15,D:0.12):0.05,E:0.3);")
    sim = simulate_alignment(
        tree, BranchSiteModelA(),
        {"kappa": 2.2, "omega0": 0.2, "omega2": 4.0, "p0": 0.5, "p1": 0.3},
        n_codons=30, seed=9,
    )
    return tree, sim.alignment


def _dead_eigh(*args, **kwargs):
    raise np.linalg.LinAlgError("eigensolver injected dead")


class TestFaultInjectedScan:
    """The acceptance scenario: scans complete via rung 4, and survive
    even total ladder exhaustion without aborting the batch."""

    def test_scan_completes_via_rung4_with_attribution(
        self, scan_problem, monkeypatch
    ):
        tree, alignment = scan_problem
        # Kill every LAPACK eigensolver (forces PadeFallback) *and* make
        # scipy's Padé produce guard-failing garbage: only rung 4 is left.
        monkeypatch.setattr(scipy.linalg, "eigh", _dead_eigh)
        monkeypatch.setattr(
            engine_mod, "transition_matrix_scipy",
            lambda q, t: np.full_like(q, -1.0),
        )
        scan = scan_branches(
            "faulted", tree, alignment,
            seed=3, max_iterations=3, processes=1, recover=True,
            map_samples=2,
        )
        assert scan.ok, scan.failures
        assert scan.n_candidates == 7
        for res in scan.gene_results:
            assert res.rung_usage is not None
            assert res.rung_usage.get("uniformization", 0) > 0
            assert "evr" not in res.rung_usage and "pade" not in res.rung_usage
            # Event attribution: rung 4 fired, every time from the Padé
            # path (the spectral rungs never produced a decomposition).
            fallback_events = [
                ev for ev in res.diagnostics["events"]
                if ev["kind"] == "uniformization_fallback"
            ]
            assert fallback_events
            assert all(
                ev["context"]["path"] == "pade" for ev in fallback_events
            )
            # --map rode along, sampling through the same uniformized
            # kernels: no error payload, real per-branch event rows.
            assert res.mapping is not None and "error" not in res.mapping
            assert res.mapping["branches"]

    def test_total_exhaustion_survives_as_structured_failures(
        self, scan_problem, monkeypatch
    ):
        tree, alignment = scan_problem
        monkeypatch.setattr(scipy.linalg, "eigh", _dead_eigh)
        monkeypatch.setattr(
            engine_mod, "transition_matrix_scipy",
            lambda q, t: np.full_like(q, -1.0),
        )
        monkeypatch.setattr(
            UniformizedOperator, "transition_matrix",
            lambda self, t: (_ for _ in ()).throw(ValueError("series diverged")),
        )
        scan = scan_branches(
            "exhausted", tree, alignment,
            seed=3, max_iterations=3, processes=1, recover=True,
            map_samples=2,
        )
        # Every branch failed — but the batch finished with structured
        # per-branch failures instead of aborting on a raw exception.
        assert not scan.ok
        assert len(scan.failures) == scan.n_candidates == 7
        for failure in scan.failures.values():
            assert failure.error_type == "ValueError"
            assert "not finite at the start point" in failure.message
