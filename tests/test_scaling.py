"""Shared mixture rate normalisation."""

import numpy as np
import pytest

from repro.codon.matrix import mean_rate
from repro.models.branch_site import BranchSiteModelA
from repro.models.m0 import M0Model
from repro.models.scaling import build_class_matrices, mixture_scale


@pytest.fixture(scope="module")
def pi():
    rng = np.random.default_rng(9)
    return rng.dirichlet(np.full(61, 6.0))


@pytest.fixture(scope="module")
def classes(pi):
    model = BranchSiteModelA()
    values = {"kappa": 2.0, "omega0": 0.2, "omega2": 3.0, "p0": 0.5, "p1": 0.3}
    return model.site_classes(values)


class TestMixtureScale:
    def test_single_class_equals_per_matrix_scale(self, pi):
        m0 = M0Model()
        classes = m0.site_classes({"kappa": 2.0, "omega": 0.6})
        matrices = build_class_matrices(2.0, classes, pi)
        q = matrices[0.6].q
        assert mean_rate(q, pi) == pytest.approx(1.0)

    def test_background_weighted_average_is_one(self, pi, classes):
        # The weighted mean of background-class rates must be exactly 1
        # after scaling — the definition of the normalisation.
        matrices = build_class_matrices(2.0, classes, pi)
        avg = sum(
            cls.proportion * mean_rate(matrices[cls.omega_background].q, pi)
            for cls in classes
        )
        assert avg == pytest.approx(1.0)

    def test_common_factor_shared_by_all_matrices(self, pi, classes):
        matrices = build_class_matrices(2.0, classes, pi)
        scales = {m.scale for m in matrices.values()}
        assert len(scales) == 1

    def test_foreground_matrix_faster_when_omega2_large(self, pi, classes):
        matrices = build_class_matrices(2.0, classes, pi)
        assert mean_rate(matrices[3.0].q, pi) > mean_rate(matrices[0.2].q, pi)

    def test_one_matrix_per_distinct_omega(self, pi, classes):
        matrices = build_class_matrices(2.0, classes, pi)
        assert set(matrices) == {0.2, 1.0, 3.0}

    def test_scale_positive(self, pi, classes):
        assert mixture_scale(2.0, classes, pi) > 0

    def test_scale_changes_with_proportions(self, pi):
        model = BranchSiteModelA()
        v1 = {"kappa": 2.0, "omega0": 0.2, "omega2": 3.0, "p0": 0.8, "p1": 0.1}
        v2 = {"kappa": 2.0, "omega0": 0.2, "omega2": 3.0, "p0": 0.1, "p1": 0.8}
        s1 = mixture_scale(2.0, model.site_classes(v1), pi)
        s2 = mixture_scale(2.0, model.site_classes(v2), pi)
        # More conserved mass (omega0) -> lower raw mean rate.
        assert s1 < s2
