"""Likelihood engines: agreement, caching, accounting, binding."""

import numpy as np
import pytest

from repro.alignment.patterns import compress_patterns
from repro.core.engine import (
    BaselineEngine,
    SlimEngine,
    SlimV2Engine,
    make_engine,
)
from repro.core.flops import FlopCounter
ENGINE_NAMES = ("codeml", "slim", "slim-v2")


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("codeml", BaselineEngine),
            ("baseline", BaselineEngine),
            ("slim", SlimEngine),
            ("slimcodeml", SlimEngine),
            ("slim-v2", SlimV2Engine),
        ],
    )
    def test_names(self, name, cls):
        assert isinstance(make_engine(name), cls)

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown engine"):
            make_engine("warp-drive")


class TestEngineAgreement:
    @pytest.mark.parametrize("name", ENGINE_NAMES)
    def test_bsm_likelihood_matches_baseline(self, name, small_tree, small_sim, h1_model, bsm_values):
        reference = make_engine("codeml").bind(small_tree, small_sim.alignment, h1_model)
        lnl_ref = reference.log_likelihood(bsm_values)
        bound = make_engine(name).bind(small_tree, small_sim.alignment, h1_model)
        lnl = bound.log_likelihood(bsm_values)
        # The paper's accuracy metric D (§IV-1): near machine precision here.
        assert abs(lnl - lnl_ref) / abs(lnl_ref) < 1e-12

    @pytest.mark.parametrize("name", ENGINE_NAMES)
    def test_h0_likelihood_agreement(self, name, small_tree, small_sim, h0_model, bsm_values):
        values = {k: bsm_values[k] for k in h0_model.param_names}
        reference = make_engine("codeml").bind(small_tree, small_sim.alignment, h0_model)
        bound = make_engine(name).bind(small_tree, small_sim.alignment, h0_model)
        assert bound.log_likelihood(values) == pytest.approx(
            reference.log_likelihood(values), rel=1e-12
        )

    def test_slimv2_per_site_mode_agrees(self, small_tree, small_sim, h1_model, bsm_values):
        bundled = SlimV2Engine(bundled=True).bind(small_tree, small_sim.alignment, h1_model)
        per_site = SlimV2Engine(bundled=False).bind(small_tree, small_sim.alignment, h1_model)
        assert bundled.log_likelihood(bsm_values) == pytest.approx(
            per_site.log_likelihood(bsm_values), rel=1e-13
        )


class TestBinding:
    def test_taxon_mismatch_rejected(self, small_tree, small_sim, h1_model):
        bad = small_sim.alignment.subset_taxa(["A", "B", "C", "D"])
        with pytest.raises(ValueError, match="taxa differ"):
            make_engine("slim").bind(small_tree, bad, h1_model)

    def test_pattern_alignment_requires_pi(self, small_tree, small_sim, h1_model):
        patterns = compress_patterns(small_sim.alignment)
        with pytest.raises(ValueError, match="pi explicitly"):
            make_engine("slim").bind(small_tree, patterns, h1_model)

    def test_pattern_alignment_with_pi(self, small_tree, small_sim, h1_model, bsm_values):
        patterns = compress_patterns(small_sim.alignment)
        pi = np.full(61, 1 / 61)
        via_patterns = make_engine("slim").bind(small_tree, patterns, h1_model, pi=pi)
        via_alignment = make_engine("slim").bind(
            small_tree, small_sim.alignment, h1_model, pi=pi
        )
        assert via_patterns.log_likelihood(bsm_values) == pytest.approx(
            via_alignment.log_likelihood(bsm_values)
        )

    def test_freq_method_changes_pi(self, small_tree, small_sim, h1_model):
        b_f3x4 = make_engine("slim").bind(small_tree, small_sim.alignment, h1_model)
        b_equal = make_engine("slim").bind(
            small_tree, small_sim.alignment, h1_model, freq_method="equal"
        )
        assert not np.allclose(b_f3x4.pi, b_equal.pi)

    def test_branch_length_interface(self, small_tree, small_sim, h1_model, bsm_values):
        bound = make_engine("slim").bind(small_tree, small_sim.alignment, h1_model)
        assert bound.n_branches == small_tree.n_branches
        lnl_a = bound.log_likelihood(bsm_values)
        bound.set_branch_lengths(np.full(bound.n_branches, 0.2))
        lnl_b = bound.log_likelihood(bsm_values)
        assert lnl_a != lnl_b
        with pytest.raises(ValueError):
            bound.set_branch_lengths(np.full(bound.n_branches, -1.0))
        with pytest.raises(ValueError):
            bound.set_branch_lengths(np.ones(2))

    def test_evaluation_counter(self, small_tree, small_sim, h1_model, bsm_values):
        bound = make_engine("slim").bind(small_tree, small_sim.alignment, h1_model)
        bound.log_likelihood(bsm_values)
        bound.log_likelihood(bsm_values)
        assert bound.n_evaluations == 2


class TestCachingAndAccounting:
    def test_decomposition_cache_hits_across_evals(self, small_tree, small_sim, h1_model, bsm_values):
        engine = make_engine("slim")
        bound = engine.bind(small_tree, small_sim.alignment, h1_model)
        bound.log_likelihood(bsm_values)
        misses_first = engine._decomp_cache.misses
        bound.log_likelihood(bsm_values)
        assert engine._decomp_cache.misses == misses_first  # all hits second time
        assert engine._decomp_cache.hits >= 3

    def test_transition_cache_off_by_default(self, small_tree, small_sim, h1_model):
        engine = make_engine("slim")
        assert engine.cache_transition_matrices is False

    def test_transition_cache_reduces_expm_calls(self, small_tree, small_sim, h1_model, bsm_values):
        counter_off = FlopCounter()
        engine_off = SlimEngine(counter=counter_off)
        bound = engine_off.bind(small_tree, small_sim.alignment, h1_model)
        bound.log_likelihood(bsm_values)
        bound.log_likelihood(bsm_values)
        flops_off = counter_off.by_operation["expm:dsyrk"]

        counter_on = FlopCounter()
        engine_on = SlimEngine(counter=counter_on, cache_transition_matrices=True)
        bound = engine_on.bind(small_tree, small_sim.alignment, h1_model)
        bound.log_likelihood(bsm_values)
        bound.log_likelihood(bsm_values)
        flops_on = counter_on.by_operation["expm:dsyrk"]
        assert flops_on == flops_off / 2  # second eval fully cached

    def test_flop_split_reported(self, small_tree, small_sim, h1_model, bsm_values):
        counter = FlopCounter()
        engine = SlimEngine(counter=counter)
        engine.bind(small_tree, small_sim.alignment, h1_model).log_likelihood(bsm_values)
        assert "expm:dsyrk" in counter.by_operation
        assert "clv:dgemv" in counter.by_operation
        assert counter.total_flops > 0

    def test_stopwatch_phases(self, small_tree, small_sim, h1_model, bsm_values):
        engine = make_engine("slim")
        engine.bind(small_tree, small_sim.alignment, h1_model).log_likelihood(bsm_values)
        assert engine.stopwatch.count("expm") > 0
        assert engine.stopwatch.count("clv") > 0
        assert engine.stopwatch.count("eigh") >= 3  # one per distinct omega

    def test_expm_count_matches_paper_model(self, small_tree, small_sim, h1_model, bsm_values):
        # Per evaluation: background branches need P(w0), P(w1);
        # the foreground branch needs P(w0), P(w1), P(w2) — but distinct
        # (omega, t) pairs are shared across classes (operator memo).
        engine = make_engine("slim")
        bound = engine.bind(small_tree, small_sim.alignment, h1_model)
        bound.log_likelihood(bsm_values)
        n_branches = small_tree.n_branches
        expected = 2 * (n_branches - 1) + 3  # distinct (omega, t) pairs
        assert engine.stopwatch.count("expm") == expected
