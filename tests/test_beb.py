"""NEB/BEB positively-selected-site identification."""

import numpy as np
import pytest

from repro.alignment.simulate import simulate_alignment
from repro.core.engine import make_engine
from repro.models.branch_site import BranchSiteModelA
from repro.optimize.beb import beb_site_probabilities, neb_site_probabilities
from repro.trees.newick import parse_newick


@pytest.fixture(scope="module")
def strong_selection_problem():
    """A dataset with unmistakable positive selection on the fg branch."""
    tree = parse_newick("((A:0.3,B:0.3):0.4 #1,(C:0.3,D:0.3):0.1,E:0.3);")
    values = {"kappa": 2.0, "omega0": 0.05, "omega2": 8.0, "p0": 0.6, "p1": 0.2}
    sim = simulate_alignment(tree, BranchSiteModelA(), values, n_codons=150, seed=11)
    bound = make_engine("slim").bind(tree, sim.alignment, BranchSiteModelA())
    return bound, values, sim


class TestNEB:
    def test_shapes(self, strong_selection_problem):
        bound, values, sim = strong_selection_problem
        sites = neb_site_probabilities(bound, values)
        assert sites.method == "NEB"
        assert sites.probabilities.shape == (sim.alignment.n_codons,)
        assert sites.class_probabilities.shape == (4, sim.alignment.n_codons)

    def test_probabilities_valid(self, strong_selection_problem):
        bound, values, _ = strong_selection_problem
        sites = neb_site_probabilities(bound, values)
        assert np.all(sites.probabilities >= 0)
        assert np.all(sites.probabilities <= 1 + 1e-12)
        assert np.allclose(sites.class_probabilities.sum(axis=0), 1.0)

    def test_enriches_true_positive_sites(self, strong_selection_problem):
        # Sites truly in classes 2a/2b should have higher mean posterior
        # than background sites.
        bound, values, sim = strong_selection_problem
        sites = neb_site_probabilities(bound, values)
        truth = sim.site_classes >= 2
        assert truth.any() and (~truth).any()
        assert sites.probabilities[truth].mean() > sites.probabilities[~truth].mean() + 0.15

    def test_selected_sites_threshold(self, strong_selection_problem):
        bound, values, _ = strong_selection_problem
        sites = neb_site_probabilities(bound, values)
        strict = set(sites.selected_sites(0.99))
        loose = set(sites.selected_sites(0.5))
        assert strict <= loose
        assert all(1 <= s <= sites.probabilities.shape[0] for s in loose)


class TestBEB:
    def test_shapes_and_validity(self, strong_selection_problem):
        bound, values, sim = strong_selection_problem
        sites = beb_site_probabilities(
            bound, values, n_proportion_grid=4, n_omega2_grid=3
        )
        assert sites.method == "BEB"
        assert sites.probabilities.shape == (sim.alignment.n_codons,)
        assert np.all((sites.probabilities >= 0) & (sites.probabilities <= 1 + 1e-9))
        assert np.allclose(sites.class_probabilities.sum(axis=0), 1.0, atol=1e-9)

    def test_correlates_with_neb(self, strong_selection_problem):
        bound, values, _ = strong_selection_problem
        neb = neb_site_probabilities(bound, values)
        beb = beb_site_probabilities(bound, values, n_proportion_grid=4, n_omega2_grid=3)
        corr = np.corrcoef(neb.probabilities, beb.probabilities)[0, 1]
        assert corr > 0.8

    def test_h0_values_integrate_proportions_only(self, strong_selection_problem):
        bound, values, _ = strong_selection_problem
        h0_values = {k: v for k, v in values.items() if k != "omega2"}
        # Binding is the H1 model; evaluate with omega2 pinned to 1 via H0
        # model instead.
        from repro.core.engine import make_engine

        tree = bound.tree
        h0_bound = make_engine("slim").bind(
            tree, _expand(bound), BranchSiteModelA(fix_omega2=True)
        )
        sites = beb_site_probabilities(h0_bound, h0_values, n_proportion_grid=3)
        assert sites.probabilities.shape[0] == h0_bound.patterns.n_sites


def _expand(bound):
    """Recover a plain alignment from a bound problem (test helper)."""
    pat = bound.patterns
    states = pat.alignment.states[:, pat.site_to_pattern]
    from repro.alignment.msa import CodonAlignment

    ambiguity = {}
    for site, pattern in enumerate(pat.site_to_pattern):
        for row in range(pat.alignment.n_taxa):
            key = (row, int(pattern))
            if key in pat.alignment.ambiguity_sets:
                ambiguity[(row, site)] = pat.alignment.ambiguity_sets[key]
    return CodonAlignment(
        list(pat.alignment.names), states.copy(), ambiguity, pat.alignment.code
    )
