"""Nei-Gojobori (1986) pairwise dN/dS counting."""

import numpy as np
import pytest

from repro.alignment.distances import (
    _path_differences,
    _site_counts,
    initial_branch_length_matrix,
    nei_gojobori,
)
from repro.alignment.msa import CodonAlignment
from repro.codon.genetic_code import UNIVERSAL


class TestSiteCounts:
    def test_fourfold_degenerate_third_position(self):
        # CCT (Pro): third position fully synonymous -> exactly 1 syn site.
        s, n = _site_counts("CCT", UNIVERSAL)
        assert s == pytest.approx(1.0)
        assert n == pytest.approx(2.0)

    def test_met_has_no_synonymous_sites(self):
        s, n = _site_counts("ATG", UNIVERSAL)
        assert s == pytest.approx(0.0)
        assert n == pytest.approx(3.0)

    def test_counts_sum_to_three(self):
        for codon in UNIVERSAL.sense_codons:
            s, n = _site_counts(codon, UNIVERSAL)
            assert s + n == pytest.approx(3.0)
            assert s >= 0 and n >= 0


class TestPathDifferences:
    def test_identical(self):
        assert _path_differences("ATG", "ATG", UNIVERSAL) == (0.0, 0.0)

    def test_single_synonymous(self):
        s, n = _path_differences("TTT", "TTC", UNIVERSAL)
        assert (s, n) == (1.0, 0.0)

    def test_single_nonsynonymous(self):
        s, n = _path_differences("TTT", "CTT", UNIVERSAL)
        assert (s, n) == (0.0, 1.0)

    def test_double_difference_averages_paths(self):
        # TTT (F) -> GTC (V): paths TTT->GTT->GTC and TTT->TTC->GTC.
        # path1: nonsyn (F->V), syn (V->V); path2: syn (F->F), nonsyn (F->V).
        s, n = _path_differences("TTT", "GTC", UNIVERSAL)
        assert s == pytest.approx(1.0)
        assert n == pytest.approx(1.0)

    def test_paths_through_stops_excluded(self):
        # TGT (C) -> TGG (W) is fine; but e.g. TAT (Y) -> TGG (W):
        # path via TAG (stop) is excluded, via TGT is kept.
        s, n = _path_differences("TAT", "TGG", UNIVERSAL)
        assert s + n == pytest.approx(2.0)


class TestNeiGojobori:
    def _aln(self, seq_a, seq_b):
        return CodonAlignment.from_sequences(["a", "b"], [seq_a, seq_b])

    def test_identical_sequences(self):
        res = nei_gojobori(self._aln("ATGTTTCCC", "ATGTTTCCC"), 0, 1)
        assert res.ds == 0.0 and res.dn == 0.0
        assert np.isnan(res.omega)

    def test_pure_synonymous_divergence(self):
        # TTT<->TTC (F/F) repeated: only dS moves.
        res = nei_gojobori(self._aln("TTTTTTTTT", "TTCTTCTTC"), 0, 1)
        assert res.ds > 0
        assert res.dn == 0.0
        assert res.omega == 0.0

    def test_pure_nonsynonymous_divergence(self):
        # ATG<->CTG (M/L): only dN moves.
        res = nei_gojobori(self._aln("ATGATGATG", "CTGCTGCTG"), 0, 1)
        assert res.dn > 0
        assert res.ds == 0.0
        assert res.omega == float("inf")

    def test_gaps_skipped(self):
        full = nei_gojobori(self._aln("TTTAAA", "TTCAAA"), 0, 1)
        gapped = nei_gojobori(self._aln("TTT---AAA", "TTC---AAA"), 0, 1)
        assert gapped.ds == pytest.approx(full.ds)

    def test_all_missing_rejected(self):
        with pytest.raises(ValueError, match="no comparable"):
            nei_gojobori(self._aln("---", "ATG"), 0, 1)

    def test_jc_correction_increases_with_divergence(self):
        low = nei_gojobori(self._aln("TTT" * 10, "TTC" + "TTT" * 9), 0, 1)
        high = nei_gojobori(self._aln("TTT" * 10, "TTC" * 5 + "TTT" * 5), 0, 1)
        assert high.ds > low.ds

    def test_omega_tracks_selection_pressure_in_simulation(self):
        from repro.alignment.simulate import simulate_alignment
        from repro.models.m0 import M0Model
        from repro.trees.newick import parse_newick

        tree = parse_newick("(a:0.4,b:0.4,c:0.01);")
        low = simulate_alignment(tree, M0Model(), {"kappa": 2.0, "omega": 0.1}, 600, seed=1)
        high = simulate_alignment(tree, M0Model(), {"kappa": 2.0, "omega": 1.5}, 600, seed=1)
        w_low = nei_gojobori(low.alignment, 0, 1).omega
        w_high = nei_gojobori(high.alignment, 0, 1).omega
        assert w_low < 0.35
        assert w_high > 0.8


class TestDistanceMatrix:
    def test_symmetric_zero_diagonal(self):
        aln = CodonAlignment.from_sequences(
            ["a", "b", "c"], ["ATGTTTCCC", "ATGTTCCCC", "ATGTTGCCA"]
        )
        dist = initial_branch_length_matrix(aln)
        assert dist.shape == (3, 3)
        assert np.allclose(dist, dist.T)
        assert np.all(np.diag(dist) == 0)
        assert np.all(dist >= 0)
