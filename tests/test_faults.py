"""Fault layer: retry/timeout policy and pool recovery (repro.parallel.faults).

Workers are module-level so they pickle into real worker processes; the
pool-based hang/crash tests are marked ``slow`` (they spend wall-clock
on real timeouts and process restarts).
"""

import os
import time

import pytest

from repro.parallel.faults import FaultPolicy, TaskFailure, run_tasks


# ----------------------------------------------------------------------
# Module-level workers (pickleable into worker processes)
# ----------------------------------------------------------------------
def _double(x):
    return 2 * x


def _boom(x):
    raise ValueError(f"bad input {x}")


def _boom_if_odd(x):
    if x % 2 == 1:
        raise ValueError(f"odd input {x}")
    return x


def _sleep_seconds(x):
    time.sleep(x)
    return x


def _exit_if_marked(x):
    """Simulates a segfaulting/OOM-killed worker for one payload."""
    if x == "die":
        os._exit(13)
    time.sleep(0.05)
    return x


def _flaky_via_file(payload):
    """Fails until the attempt-counter file reaches the threshold."""
    path, fail_times, value = payload
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("x")
    with open(path, "r", encoding="utf-8") as handle:
        attempts = len(handle.read())
    if attempts <= fail_times:
        raise RuntimeError(f"transient failure on attempt {attempts}")
    return value


class TestFaultPolicy:
    def test_defaults_fail_soft_no_retries(self):
        policy = FaultPolicy()
        assert policy.max_retries == 0
        assert policy.task_timeout is None

    def test_backoff_grows_exponentially(self):
        policy = FaultPolicy(retry_backoff=0.5, backoff_multiplier=2.0)
        assert policy.backoff_seconds(1) == 0.5
        assert policy.backoff_seconds(2) == 1.0
        assert policy.backoff_seconds(3) == 2.0

    def test_zero_backoff(self):
        assert FaultPolicy(retry_backoff=0.0).backoff_seconds(3) == 0.0

    def test_default_backoff_is_deterministic(self):
        """Without opting into jitter, repeated calls return the exact
        exponential schedule — no hidden randomness."""
        policy = FaultPolicy(retry_backoff=1.0, backoff_multiplier=2.0)
        assert [policy.backoff_seconds(2) for _ in range(5)] == [2.0] * 5

    def test_jitter_stays_within_full_jitter_band(self):
        policy = FaultPolicy(retry_backoff=1.0, backoff_multiplier=2.0,
                             jitter=0.5, jitter_seed=0)
        for attempt in (1, 2, 3):
            base = 1.0 * 2.0 ** (attempt - 1)
            for _ in range(20):
                delay = policy.backoff_seconds(attempt)
                assert base * 0.5 <= delay <= base

    def test_jitter_seed_reproduces_schedule(self):
        a = FaultPolicy(retry_backoff=0.5, jitter=1.0, jitter_seed=42)
        b = FaultPolicy(retry_backoff=0.5, jitter=1.0, jitter_seed=42)
        assert [a.backoff_seconds(1) for _ in range(4)] == [
            b.backoff_seconds(1) for _ in range(4)
        ]

    def test_jitter_spreads_delays(self):
        policy = FaultPolicy(retry_backoff=1.0, jitter=1.0, jitter_seed=7)
        delays = {policy.backoff_seconds(1) for _ in range(10)}
        assert len(delays) > 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"task_timeout": 0.0},
            {"task_timeout": -1.0},
            {"max_retries": -1},
            {"retry_backoff": -0.1},
            {"max_pool_restarts": -1},
            {"jitter": -0.1},
            {"jitter": 1.5},
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultPolicy(**kwargs)


class TestRunTasksInline:
    def test_results_in_input_order(self):
        outcomes = run_tasks(_double, [3, 1, 2], in_process=True)
        assert [o.result for o in outcomes] == [6, 2, 4]
        assert all(o.ok and o.attempts == 1 for o in outcomes)

    def test_failure_captured_not_raised(self):
        outcomes = run_tasks(_boom_if_odd, [0, 1, 2], in_process=True)
        assert [o.ok for o in outcomes] == [True, False, True]
        failure = outcomes[1].failure
        assert isinstance(failure, TaskFailure)
        assert failure.kind == "error"
        assert failure.error_type == "ValueError"
        assert "odd input 1" in failure.message

    def test_retry_recovers_transient_failure(self, tmp_path):
        counter = tmp_path / "attempts"
        policy = FaultPolicy(max_retries=2, retry_backoff=0.0)
        (outcome,) = run_tasks(
            _flaky_via_file, [(str(counter), 2, "ok")], policy=policy, in_process=True
        )
        assert outcome.ok
        assert outcome.result == "ok"
        assert outcome.attempts == 3

    def test_retries_exhausted_reports_total_attempts(self):
        policy = FaultPolicy(max_retries=2, retry_backoff=0.0)
        (outcome,) = run_tasks(_boom, ["x"], policy=policy, in_process=True)
        assert not outcome.ok
        assert outcome.failure.attempts == 3

    def test_on_outcome_fires_per_task(self):
        seen = []
        run_tasks(_double, [1, 2], on_outcome=lambda o: seen.append(o.task_id),
                  in_process=True)
        assert seen == ["task-0", "task-1"]

    def test_custom_task_ids(self):
        outcomes = run_tasks(_boom, ["x"], task_ids=["geneA"], in_process=True)
        assert outcomes[0].failure.task_id == "geneA"

    def test_id_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="task ids"):
            run_tasks(_double, [1, 2], task_ids=["only-one"], in_process=True)

    def test_empty_batch(self):
        assert run_tasks(_double, []) == []


class TestRunTasksPool:
    def test_mixed_success_and_failure(self):
        outcomes = run_tasks(_boom_if_odd, [0, 1, 2, 3], max_workers=2)
        assert [o.ok for o in outcomes] == [True, False, True, False]
        assert outcomes[2].result == 2
        assert outcomes[1].failure.kind == "error"

    def test_retry_in_pool(self, tmp_path):
        counter = tmp_path / "attempts"
        policy = FaultPolicy(max_retries=1, retry_backoff=0.0)
        (outcome,) = run_tasks(
            _flaky_via_file, [(str(counter), 1, 7)], policy=policy, max_workers=2
        )
        assert outcome.ok
        assert outcome.result == 7
        assert outcome.attempts == 2

    @pytest.mark.slow
    def test_hung_task_times_out_without_masking_others(self):
        policy = FaultPolicy(task_timeout=1.5)
        start = time.perf_counter()
        outcomes = run_tasks(
            _sleep_seconds,
            [30.0, 0.05, 0.05, 0.05],
            policy=policy,
            max_workers=2,
        )
        wall = time.perf_counter() - start
        assert not outcomes[0].ok
        assert outcomes[0].failure.kind == "timeout"
        assert "task_timeout" in outcomes[0].failure.message
        assert all(o.ok for o in outcomes[1:])
        # The 30s sleeper was abandoned, not awaited.
        assert wall < 15.0

    @pytest.mark.slow
    def test_worker_crash_recovers_surviving_tasks(self):
        payloads = ["a", "die", "b", "c", "d"]
        outcomes = run_tasks(_exit_if_marked, payloads, max_workers=2)
        by_payload = dict(zip(payloads, outcomes))
        assert not by_payload["die"].ok
        assert by_payload["die"].failure.kind == "pool"
        # Every surviving task completed on a fresh pool.
        for key in ("a", "b", "c", "d"):
            assert by_payload[key].ok, f"{key}: {by_payload[key].failure}"
            assert by_payload[key].result == key

    @pytest.mark.slow
    def test_crash_loop_exhausts_retries_in_quarantine(self):
        policy = FaultPolicy(max_retries=2, retry_backoff=0.0)
        outcomes = run_tasks(_exit_if_marked, ["die"], policy=policy, max_workers=1)
        assert not outcomes[0].ok
        assert outcomes[0].failure.kind == "pool"
        # The quarantine round pins every crash on the culprit, charging
        # one attempt per crash until retries run out.
        assert outcomes[0].failure.attempts == 3
