"""Incremental likelihood evaluation: bit-identity and reuse accounting.

The dirty-path CLV cache and the cross-class subtree sharing promise
*exact* float equality with full re-pruning (DESIGN.md §9) — not
closeness.  Every comparison here is ``==`` / ``array_equal``; a single
ulp of drift is a failure.
"""

import numpy as np
import pytest

from repro.alignment.msa import AMBIGUOUS, MISSING, CodonAlignment
from repro.alignment.patterns import compress_patterns
from repro.codon.matrix import build_rate_matrix
from repro.core.eigen import decompose
from repro.core.engine import make_engine
from repro.core.expm import transition_matrix_syrk
from repro.core.recovery import RecoveryConfig, RecoveryPolicy
from repro.likelihood.pruning import PruningState, build_leaf_clvs, prune_site_class
from repro.optimize.ml import fit_model
from repro.trees.newick import parse_newick

ENGINE_NAMES = ("codeml", "slim", "slim-v2")


# ----------------------------------------------------------------------
# Satellite: vectorised leaf-CLV construction
# ----------------------------------------------------------------------
class TestBuildLeafClvs:
    def test_matches_per_cell_reference(self):
        # Exact, missing and (partially) ambiguous cells in one alignment:
        # ATR = {ATA, ATG}, TGR resolves to the single sense codon TGG.
        aln = CodonAlignment.from_sequences(
            ["a", "b", "c"],
            ["ATGATR---", "---TGRAAA", "CCCATGTTT"],
        )
        assert np.any(aln.states == MISSING) and np.any(aln.states == AMBIGUOUS)
        clvs = build_leaf_clvs(aln)
        for row in range(aln.n_taxa):
            for col in range(aln.n_codons):
                np.testing.assert_array_equal(
                    clvs[row][:, col], aln.leaf_clv(row, col)
                )

    def test_fortran_order_preserved(self):
        aln = CodonAlignment.from_sequences(["a", "b"], ["ATGTTT", "ATGCCC"])
        for clv in build_leaf_clvs(aln):
            assert clv.flags["F_CONTIGUOUS"]


# ----------------------------------------------------------------------
# Direct pruning-state tests (no engine layer)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def prune_setup():
    rng = np.random.default_rng(2)
    pi = rng.dirichlet(np.full(61, 8.0))
    decomp = decompose(build_rate_matrix(2.0, 0.5, pi))
    tree = parse_newick("((A:0.2,B:0.1):0.08,(C:0.15,D:0.12):0.05,E:0.3);")
    aln = CodonAlignment.from_sequences(
        ["A", "B", "C", "D", "E"],
        ["ATGTTTAAA", "ATGCCCAAA", "CCCTTTAAA", "ATGTTTCCC", "ATGTTTAAA"],
    )
    pat = compress_patterns(aln.subset_taxa(tree.leaf_names()))
    return pi, decomp, tree, build_leaf_clvs(pat.alignment)


def _factory(decomp, lengths):
    def factory(t, foreground):
        return transition_matrix_syrk(decomp, t, clip_negative=False)

    return factory


class TestPruningState:
    def test_populate_matches_stateless(self, prune_setup):
        pi, decomp, tree, leaf_clvs = prune_setup
        table = tree.branch_table()
        factory = _factory(decomp, None)
        full = prune_site_class(table, len(tree.nodes), leaf_clvs, factory, np.matmul)
        state = PruningState.empty(len(tree.nodes))
        pop = prune_site_class(
            table, len(tree.nodes), leaf_clvs, factory, np.matmul, state=state
        )
        np.testing.assert_array_equal(full.root_clv, pop.root_clv)
        np.testing.assert_array_equal(full.log_scalers, pop.log_scalers)
        assert state.ready and state.root_index >= 0

    def test_single_branch_update_recomputes_only_root_path(self, prune_setup):
        pi, decomp, tree, leaf_clvs = prune_setup
        table = list(tree.branch_table())
        n_nodes = len(tree.nodes)

        calls = []

        def propagate(op, clv):
            calls.append(1)
            return op @ clv

        factory = _factory(decomp, None)
        state = PruningState.empty(n_nodes)
        prune_site_class(table, n_nodes, leaf_clvs, factory, propagate, state=state)
        calls.clear()

        # Change one leaf branch: only its path to the root re-propagates.
        child, parent, t, fg = table[0]
        table2 = [(c, p, t * 1.1 if c == child else bl, f) for c, p, bl, f in table]
        inc = prune_site_class(
            table2, n_nodes, leaf_clvs, factory, propagate,
            state=state, dirty={child},
        )
        path = {child}
        grew = True
        parent_of = {c: p for c, p, _, _ in table2}
        while grew:
            grew = False
            for c in list(path):
                if c in parent_of and parent_of[c] not in path:
                    # the parent's own branch (if any) re-propagates too
                    if parent_of[c] in parent_of:
                        path.add(parent_of[c])
                        grew = True
        assert len(calls) == len(path)

        fresh = prune_site_class(table2, n_nodes, leaf_clvs, factory, np.matmul)
        np.testing.assert_array_equal(fresh.root_clv, inc.root_clv)
        np.testing.assert_array_equal(fresh.log_scalers, inc.log_scalers)

    def test_incremental_with_rescaling(self, prune_setup):
        pi, decomp, tree, leaf_clvs = prune_setup
        table = list(tree.branch_table())
        n_nodes = len(tree.nodes)
        factory = _factory(decomp, None)
        # Threshold high enough that every internal node rescales.
        state = PruningState.empty(n_nodes)
        prune_site_class(
            table, n_nodes, leaf_clvs, factory, np.matmul,
            scale_threshold=1.0, state=state,
        )
        child = table[0][0]
        table2 = [(c, p, bl * (1.2 if c == child else 1.0), f) for c, p, bl, f in table]
        inc = prune_site_class(
            table2, n_nodes, leaf_clvs, factory, np.matmul,
            scale_threshold=1.0, state=state, dirty={child},
        )
        fresh = prune_site_class(
            table2, n_nodes, leaf_clvs, factory, np.matmul, scale_threshold=1.0
        )
        assert np.any(fresh.log_scalers != 0.0)
        np.testing.assert_array_equal(fresh.root_clv, inc.root_clv)
        np.testing.assert_array_equal(fresh.log_scalers, inc.log_scalers)

    def test_derive_leaves_base_state_untouched(self, prune_setup):
        pi, decomp, tree, leaf_clvs = prune_setup
        table = list(tree.branch_table())
        n_nodes = len(tree.nodes)
        factory = _factory(decomp, None)
        state = PruningState.empty(n_nodes)
        prune_site_class(table, n_nodes, leaf_clvs, factory, np.matmul, state=state)
        before = [None if c is None else c.copy() for c in state.clvs]

        derived = state.derive()
        child = table[0][0]
        table2 = [(c, p, bl * 1.3 if c == child else bl, f) for c, p, bl, f in table]
        prune_site_class(
            table2, n_nodes, leaf_clvs, factory, np.matmul,
            state=derived, dirty={child},
        )
        for old, cur in zip(before, state.clvs):
            if old is not None:
                np.testing.assert_array_equal(old, cur)


# ----------------------------------------------------------------------
# Property test: randomized update sequences through the engine layer
# ----------------------------------------------------------------------
def _update_sequence(lengths, values, rng, steps=8):
    """Committed single-branch / multi-branch / model-param updates,
    with a non-committing probe sprinkled in after every third step."""
    seqs = [(dict(values), lengths.copy(), None)]
    v, L = dict(values), lengths
    for step in range(steps):
        kind = int(rng.integers(0, 3))
        L = L.copy()
        if kind == 0:
            L[int(rng.integers(0, len(L)))] *= 1.0 + 0.1 * rng.random()
        elif kind == 1:
            idx = rng.choice(len(L), size=2, replace=False)
            L[idx] *= 0.95
        else:
            v = dict(v)
            v["omega0"] = float(v["omega0"] * (1.0 + 0.05 * rng.random()))
        seqs.append((dict(v), L.copy(), None))
        if step % 3 == 1:
            probe = L.copy()
            probe[0] += 1e-6
            seqs.append((dict(v), probe, (0,)))
    return seqs


@pytest.mark.parametrize("engine_name", ENGINE_NAMES)
@pytest.mark.parametrize("recover", [False, True], ids=["plain", "recover"])
class TestEngineBitIdentity:
    def test_randomized_updates_bit_identical(
        self, engine_name, recover, small_tree, small_sim, h1_model, bsm_values
    ):
        kwargs = {"recovery": RecoveryConfig()} if recover else {}
        eng_full = make_engine(engine_name, **kwargs)
        eng_inc = make_engine(engine_name, **kwargs)
        b_full = eng_full.bind(small_tree, small_sim.alignment, h1_model)
        b_inc = eng_inc.bind(
            small_tree, small_sim.alignment, h1_model, incremental=True
        )
        lengths = np.asarray(b_full.branch_lengths, dtype=float)
        rng = np.random.default_rng(11)
        for values, L, touched in _update_sequence(lengths, bsm_values, rng):
            a = b_full.log_likelihood(values, L)
            if touched is None:
                b = b_inc.log_likelihood(values, L)
            else:
                b = b_inc.log_likelihood(values, L, touched=touched)
            assert a == b  # exact float equality, not approx
        assert eng_inc.clv_reuses > 0
        assert eng_inc.clv_propagations < eng_full.clv_propagations

    def test_site_class_matrix_bit_identical(
        self, engine_name, recover, small_tree, small_sim, h0_model, bsm_values
    ):
        kwargs = {"recovery": RecoveryConfig()} if recover else {}
        eng_full = make_engine(engine_name, **kwargs)
        eng_inc = make_engine(engine_name, **kwargs)
        b_full = eng_full.bind(small_tree, small_sim.alignment, h0_model)
        b_inc = eng_inc.bind(
            small_tree, small_sim.alignment, h0_model, incremental=True
        )
        values = {k: v for k, v in bsm_values.items() if k != "omega2"}
        lengths = np.asarray(b_full.branch_lengths, dtype=float)
        b_full.log_likelihood(values, lengths)
        b_inc.log_likelihood(values, lengths)
        bumped = lengths.copy()
        bumped[1] *= 1.07
        m_full, p_full = b_full.site_class_matrix(values, bumped)
        m_inc, p_inc = b_inc.site_class_matrix(values, bumped)
        np.testing.assert_array_equal(m_full, m_inc)
        np.testing.assert_array_equal(p_full, p_inc)


class TestEngineSemantics:
    def test_touched_requires_incremental_binding(
        self, small_tree, small_sim, h1_model, bsm_values
    ):
        bound = make_engine("slim").bind(small_tree, small_sim.alignment, h1_model)
        with pytest.raises(ValueError, match="incremental"):
            bound.log_likelihood(
                bsm_values, bound.branch_lengths, touched=(0,)
            )

    def test_probe_does_not_commit(self, small_tree, small_sim, h1_model, bsm_values):
        engine = make_engine("slim")
        bound = engine.bind(small_tree, small_sim.alignment, h1_model, incremental=True)
        lengths = np.asarray(bound.branch_lengths, dtype=float)
        base = bound.log_likelihood(bsm_values, lengths)
        probe = lengths.copy()
        probe[2] += 1e-6
        bound.log_likelihood(bsm_values, probe, touched=(2,))
        # Re-evaluating the committed point must be a pure cache hit: the
        # probe did not advance the durable state.
        before = engine.clv_propagations
        again = bound.log_likelihood(bsm_values, lengths)
        assert again == base
        assert engine.clv_propagations == before

    def test_set_incremental_toggles_and_invalidates(
        self, small_tree, small_sim, h1_model, bsm_values
    ):
        engine = make_engine("slim")
        bound = engine.bind(small_tree, small_sim.alignment, h1_model, incremental=True)
        lengths = np.asarray(bound.branch_lengths, dtype=float)
        a = bound.log_likelihood(bsm_values, lengths)
        bound.set_incremental(False)
        assert bound._inc_values is None
        b = bound.log_likelihood(bsm_values, lengths)
        assert a == b
        bound.set_incremental(True)
        assert a == bound.log_likelihood(bsm_values, lengths)

    def test_cache_stats_exposes_clv_counters(
        self, small_tree, small_sim, h1_model, bsm_values
    ):
        engine = make_engine("slim")
        bound = engine.bind(small_tree, small_sim.alignment, h1_model, incremental=True)
        lengths = np.asarray(bound.branch_lengths, dtype=float)
        bound.log_likelihood(bsm_values, lengths)
        bumped = lengths.copy()
        bumped[0] *= 1.01
        bound.log_likelihood(bsm_values, bumped)
        stats = engine.cache_stats()
        assert stats["clv_propagations"] > 0
        assert stats["clv_reuses"] > 0

    def test_flop_counter_ledgers_saved_work(
        self, small_tree, small_sim, h1_model, bsm_values
    ):
        from repro.core.flops import FlopCounter

        engine = make_engine("slim", counter=FlopCounter())
        bound = engine.bind(small_tree, small_sim.alignment, h1_model, incremental=True)
        lengths = np.asarray(bound.branch_lengths, dtype=float)
        bound.log_likelihood(bsm_values, lengths)
        bumped = lengths.copy()
        bumped[0] *= 1.01
        bound.log_likelihood(bsm_values, bumped)
        assert engine.counter.total_saved_flops > 0
        assert "saved by reuse" in engine.counter.summary()


# ----------------------------------------------------------------------
# fit_model: hinted gradients, identical optimum, fewer propagations
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine_name", ENGINE_NAMES)
def test_fit_model_incremental_identical_and_cheaper(
    engine_name, small_tree, small_sim, h1_model
):
    eng_full = make_engine(engine_name)
    eng_inc = make_engine(engine_name)
    # batched=False on both sides: batched mode aliases background-tied
    # subtrees even in full evaluations, which is its own optimisation —
    # this test isolates what the *incremental* layer saves over a plain
    # full evaluation.
    b_full = eng_full.bind(small_tree, small_sim.alignment, h1_model, batched=False)
    b_inc = eng_inc.bind(
        small_tree, small_sim.alignment, h1_model, incremental=True, batched=False
    )
    fit_full = fit_model(b_full, seed=1, max_iterations=6)
    fit_inc = fit_model(b_inc, seed=1, max_iterations=6)
    assert fit_full.lnl == fit_inc.lnl
    assert fit_full.n_evaluations == fit_inc.n_evaluations
    np.testing.assert_array_equal(fit_full.branch_lengths, fit_inc.branch_lengths)
    assert fit_full.values == fit_inc.values
    # The point of the exercise: markedly fewer branch propagations.
    assert eng_inc.clv_propagations * 2 <= eng_full.clv_propagations


def test_fit_model_incremental_override_toggles_binding(
    small_tree, small_sim, h1_model
):
    engine = make_engine("slim")
    bound = engine.bind(small_tree, small_sim.alignment, h1_model)
    assert not bound.incremental
    fit = fit_model(bound, seed=1, max_iterations=3, incremental=True)
    assert bound.incremental
    reference = fit_model(
        make_engine("slim").bind(small_tree, small_sim.alignment, h1_model),
        seed=1,
        max_iterations=3,
    )
    assert fit.lnl == reference.lnl


def test_fit_model_incremental_with_recovery(small_tree, small_sim, h1_model):
    eng_full = make_engine("slim", recovery=RecoveryConfig())
    eng_inc = make_engine("slim", recovery=RecoveryConfig())
    b_full = eng_full.bind(small_tree, small_sim.alignment, h1_model)
    b_inc = eng_inc.bind(small_tree, small_sim.alignment, h1_model, incremental=True)
    fit_full = fit_model(b_full, seed=3, max_iterations=5, recovery=RecoveryPolicy())
    fit_inc = fit_model(b_inc, seed=3, max_iterations=5, recovery=RecoveryPolicy())
    assert fit_full.lnl == fit_inc.lnl
    assert fit_full.n_evaluations == fit_inc.n_evaluations


# ----------------------------------------------------------------------
# Batch layer: payloads, stats round-trip, summary line
# ----------------------------------------------------------------------
class TestBatchIntegration:
    def test_analyze_genes_reports_clv_stats(self, small_tree, small_sim):
        from repro.parallel.batch import GeneJob, analyze_genes
        from repro.parallel.metrics import summarize_results

        job = GeneJob.from_objects("g1", small_tree, small_sim.alignment)
        [plain] = analyze_genes([job], processes=1, max_iterations=3)
        [inc] = analyze_genes([job], processes=1, max_iterations=3, incremental=True)
        assert plain.clv_stats is None
        assert inc.clv_stats is not None and inc.clv_stats["reuses"] > 0
        assert inc.lnl0 == plain.lnl0 and inc.lnl1 == plain.lnl1

        summary = summarize_results([inc])
        assert summary.total_clv_reuses == inc.clv_stats["reuses"]
        assert "clv reuse" in summary.format()
        assert "clv reuse" not in summarize_results([plain]).format()

    def test_gene_result_clv_stats_roundtrip(self):
        from repro.io.results_io import gene_result_from_dict, gene_result_to_dict
        from repro.parallel.batch import GeneResult

        result = GeneResult(
            gene_id="g",
            lnl0=-10.0,
            lnl1=-9.0,
            statistic=2.0,
            pvalue=0.15,
            iterations=4,
            runtime_seconds=0.1,
            clv_stats={"propagations": 12, "reuses": 30},
        )
        back = gene_result_from_dict(gene_result_to_dict(result))
        assert back.clv_stats == {"propagations": 12, "reuses": 30}
        assert gene_result_from_dict(
            gene_result_to_dict(GeneResult("g", -1.0, -1.0, 0.0, 1.0, 1, 0.0))
        ).clv_stats is None
