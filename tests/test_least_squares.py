"""OLS branch lengths and the NG86 data-driven optimizer start."""

import numpy as np
import pytest

from repro.trees.least_squares import branch_incidence_matrix, least_squares_branch_lengths
from repro.trees.newick import parse_newick
from repro.trees.simulate import simulate_yule_tree


def _patristic_matrix(tree):
    """Pairwise leaf path lengths via the incidence matrix itself."""
    a = branch_incidence_matrix(tree)
    b = np.array(tree.branch_lengths())
    n = tree.n_leaves
    dist = np.zeros((n, n))
    row = 0
    for i in range(n):
        for j in range(i + 1, n):
            dist[i, j] = dist[j, i] = a[row] @ b
            row += 1
    return dist


class TestIncidenceMatrix:
    def test_shape(self):
        tree = parse_newick("((A:1,B:1):1,C:1,D:1);")
        a = branch_incidence_matrix(tree)
        assert a.shape == (6, 5)  # C(4,2) pairs x (2*4-3) branches

    def test_terminal_branch_membership(self):
        tree = parse_newick("(A:1,B:1,C:1);")
        a = branch_incidence_matrix(tree)
        # Every pair path uses exactly the two terminal branches.
        assert np.all(a.sum(axis=1) == 2)

    def test_internal_branch_separates_clades(self):
        tree = parse_newick("((A:1,B:1):1,C:1,D:1);")
        a = branch_incidence_matrix(tree)
        b = np.zeros(5)
        # Identify the internal branch column: the one on exactly the
        # cross-clade paths (A-C, A-D, B-C, B-D) = 4 of 6 pairs.
        col_counts = a.sum(axis=0)
        assert sorted(col_counts.tolist()).count(4.0) >= 1


class TestLeastSquares:
    @pytest.mark.parametrize("n", [4, 7, 12])
    def test_exact_recovery_from_true_distances(self, n):
        tree = simulate_yule_tree(n, seed=n)
        true_lengths = np.array(tree.branch_lengths())
        dist = _patristic_matrix(tree)
        recovered = least_squares_branch_lengths(tree, dist)
        assert np.allclose(recovered, np.maximum(true_lengths, 1e-6), atol=1e-8)

    def test_noisy_distances_near_truth(self):
        tree = simulate_yule_tree(8, seed=3, mean_branch_length=0.3)
        rng = np.random.default_rng(0)
        dist = _patristic_matrix(tree)
        noise = rng.normal(scale=0.01, size=dist.shape)
        noisy = dist + 0.5 * (noise + noise.T)
        np.fill_diagonal(noisy, 0.0)
        recovered = least_squares_branch_lengths(tree, np.abs(noisy))
        assert np.allclose(recovered, tree.branch_lengths(), atol=0.08)

    def test_negative_solutions_clipped(self):
        tree = parse_newick("(A:1,B:1,C:1);")
        # Distances violating the triangle structure force a negative OLS
        # coordinate, which must be clipped.
        dist = np.array([[0.0, 0.1, 2.0], [0.1, 0.0, 2.0], [2.0, 2.0, 0.0]])
        lengths = least_squares_branch_lengths(tree, dist)
        assert np.all(lengths >= 1e-6)

    def test_validation(self):
        tree = parse_newick("(A:1,B:1,C:1);")
        with pytest.raises(ValueError, match="shape"):
            least_squares_branch_lengths(tree, np.zeros((2, 2)))
        asym = np.array([[0.0, 1.0, 1.0], [2.0, 0.0, 1.0], [1.0, 1.0, 0.0]])
        with pytest.raises(ValueError, match="symmetric"):
            least_squares_branch_lengths(tree, asym)


class TestNg86Start:
    def test_fit_model_accepts_ng86_start(self):
        from repro.alignment.simulate import simulate_alignment
        from repro.core.engine import make_engine
        from repro.models.m0 import M0Model
        from repro.optimize.ml import fit_model, ng86_start_lengths

        tree = simulate_yule_tree(5, seed=2, mean_branch_length=0.2)
        sim = simulate_alignment(tree, M0Model(), {"kappa": 2.0, "omega": 0.5}, 200, seed=3)
        bound = make_engine("slim").bind(tree, sim.alignment, M0Model())

        start = ng86_start_lengths(bound)
        assert start.shape == (tree.n_branches,)
        assert np.all(start > 0)
        # Data-driven start lands near the generating tree length.
        assert start.sum() == pytest.approx(tree.total_tree_length(), rel=0.5)

        fit = fit_model(bound, start_lengths="ng86", seed=1, max_iterations=3)
        assert np.isfinite(fit.lnl)

    def test_unknown_mode_rejected(self):
        from repro.alignment.simulate import simulate_alignment
        from repro.core.engine import make_engine
        from repro.models.m0 import M0Model
        from repro.optimize.ml import fit_model

        tree = simulate_yule_tree(4, seed=2)
        sim = simulate_alignment(tree, M0Model(), {"kappa": 2.0, "omega": 0.5}, 30, seed=3)
        bound = make_engine("slim").bind(tree, sim.alignment, M0Model())
        with pytest.raises(ValueError, match="ng86"):
            fit_model(bound, start_lengths="magic")
