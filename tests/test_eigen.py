"""Symmetrisation (Eq. 2) and spectral decomposition (§III-A step 2)."""

import numpy as np
import pytest

from repro.codon.matrix import build_rate_matrix
from repro.core.eigen import DecompositionCache, decompose, symmetrize
from repro.core.flops import FlopCounter


@pytest.fixture(scope="module")
def pi():
    rng = np.random.default_rng(5)
    raw = rng.dirichlet(np.full(61, 4.0))
    return raw / raw.sum()


@pytest.fixture(scope="module")
def matrix(pi):
    return build_rate_matrix(2.3, 0.6, pi)


class TestSymmetrize:
    def test_a_is_symmetric(self, matrix):
        a = symmetrize(matrix)
        assert np.allclose(a, a.T)

    def test_a_similar_to_q(self, matrix):
        # A = Π^{1/2} Q Π^{-1/2} shares Q's spectrum.
        a = symmetrize(matrix)
        eig_a = np.sort(np.linalg.eigvalsh(a))
        eig_q = np.sort(np.linalg.eigvals(matrix.q).real)
        assert np.allclose(eig_a, eig_q, atol=1e-9)

    def test_spectrum_nonpositive(self, matrix):
        # A generator's eigenvalues lie in the closed left half-plane.
        a = symmetrize(matrix)
        assert np.linalg.eigvalsh(a).max() <= 1e-10


class TestDecompose:
    @pytest.mark.parametrize("driver", ["evr", "ev"])
    def test_reconstructs_q(self, matrix, driver):
        d = decompose(matrix, driver=driver)
        assert np.allclose(d.reconstruct_q(), matrix.q, atol=1e-10)

    def test_eigenvectors_orthonormal(self, matrix):
        d = decompose(matrix)
        x = d.eigenvectors
        assert np.allclose(x.T @ x, np.eye(61), atol=1e-10)

    def test_zero_eigenvalue_present(self, matrix):
        # The stationary distribution gives exactly one zero eigenvalue.
        d = decompose(matrix)
        assert np.min(np.abs(d.eigenvalues)) < 1e-10

    def test_eigenvectors_fortran_ordered(self, matrix):
        d = decompose(matrix)
        assert d.eigenvectors.flags["F_CONTIGUOUS"]

    def test_counter_accounting(self, matrix):
        counter = FlopCounter()
        decompose(matrix, counter=counter)
        assert counter.by_operation.get("eigh(dsyevr)", 0) > 0


class TestDecompositionCache:
    def test_hit_on_repeat(self, matrix):
        cache = DecompositionCache()
        first = cache.get(matrix)
        second = cache.get(matrix)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_miss_on_different_omega(self, pi):
        cache = DecompositionCache()
        cache.get(build_rate_matrix(2.0, 0.5, pi))
        cache.get(build_rate_matrix(2.0, 0.6, pi))
        assert cache.misses == 2

    def test_miss_on_different_pi(self):
        cache = DecompositionCache()
        pi_a = np.full(61, 1 / 61)
        rng = np.random.default_rng(0)
        pi_b = rng.dirichlet(np.full(61, 8.0))
        cache.get(build_rate_matrix(2.0, 0.5, pi_a))
        cache.get(build_rate_matrix(2.0, 0.5, pi_b))
        assert cache.misses == 2

    def test_lru_eviction(self, pi):
        cache = DecompositionCache(maxsize=2)
        m1 = build_rate_matrix(2.0, 0.1, pi)
        m2 = build_rate_matrix(2.0, 0.2, pi)
        m3 = build_rate_matrix(2.0, 0.3, pi)
        cache.get(m1), cache.get(m2), cache.get(m3)
        assert len(cache) == 2
        cache.get(m1)  # evicted -> miss
        assert cache.misses == 4

    def test_clear(self, matrix):
        cache = DecompositionCache()
        cache.get(matrix)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            DecompositionCache(maxsize=0)
