"""Codon-pair classification against hand-checked cases (paper Eq. 1)."""

import pytest

from repro.codon.classify import PairKind, classification_table, classify_pair
from repro.codon.genetic_code import UNIVERSAL


class TestClassifyPair:
    def test_synonymous_transition(self):
        # TTT (Phe) -> TTC (Phe): T->C at pos 2 is a pyrimidine transition.
        cls = classify_pair("TTT", "TTC", UNIVERSAL)
        assert cls.kind is PairKind.SYN_TRANSITION
        assert cls.position == 2
        assert cls.transition is True and cls.synonymous is True

    def test_synonymous_transversion(self):
        # CGT (Arg) -> CGG (Arg): T->G transversion, synonymous.
        cls = classify_pair("CGT", "CGG", UNIVERSAL)
        assert cls.kind is PairKind.SYN_TRANSVERSION

    def test_nonsynonymous_transition(self):
        # TTT (Phe) -> CTT (Leu): T->C at pos 0, transition, nonsyn.
        cls = classify_pair("TTT", "CTT", UNIVERSAL)
        assert cls.kind is PairKind.NONSYN_TRANSITION
        assert cls.position == 0

    def test_nonsynonymous_transversion(self):
        # TTT (Phe) -> TAT (Tyr)?? T->A at pos 1, transversion, nonsyn.
        cls = classify_pair("TTT", "TAT", UNIVERSAL)
        assert cls.kind is PairKind.NONSYN_TRANSVERSION

    def test_multiple_differences(self):
        cls = classify_pair("TTT", "TCC", UNIVERSAL)
        assert cls.kind is PairKind.MULTIPLE
        assert cls.position is None

    def test_needs_flags(self):
        assert classify_pair("TTT", "TTC", UNIVERSAL).needs_kappa
        assert not classify_pair("TTT", "TTC", UNIVERSAL).needs_omega
        assert classify_pair("TTT", "CTT", UNIVERSAL).needs_omega

    def test_identical_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            classify_pair("TTT", "TTT", UNIVERSAL)

    def test_stop_rejected(self):
        with pytest.raises(ValueError, match="stop"):
            classify_pair("TAA", "TAT", UNIVERSAL)

    def test_direction_symmetry(self):
        a = classify_pair("TTT", "CTT", UNIVERSAL)
        b = classify_pair("CTT", "TTT", UNIVERSAL)
        assert a.kind is b.kind and a.position == b.position


class TestClassificationTable:
    def test_masks_are_symmetric_and_diagonal_free(self):
        table = classification_table(UNIVERSAL)
        assert not table.single.diagonal().any()
        assert (table.single == table.single.T).all()

    def test_single_difference_count(self):
        # Every codon has ≤9 single-nucleotide neighbours; stops remove some.
        table = classification_table(UNIVERSAL)
        per_row = table.single.sum(axis=1)
        assert per_row.max() <= 9
        assert per_row.min() >= 5  # no sense codon is that isolated

    def test_known_pair_counts(self):
        # Totals computed independently from first principles for the
        # universal code: 526 ordered single-nucleotide sense pairs.
        table = classification_table(UNIVERSAL)
        counts = {kind: table.count(kind) for kind in PairKind}
        assert counts[PairKind.SYN_TRANSITION] == 62
        assert counts[PairKind.SYN_TRANSVERSION] == 72
        assert counts[PairKind.NONSYN_TRANSITION] == 116
        assert counts[PairKind.NONSYN_TRANSVERSION] == 276
        total_single = sum(
            counts[k] for k in PairKind if k is not PairKind.MULTIPLE
        )
        assert total_single == 526
        assert counts[PairKind.MULTIPLE] == 61 * 60 - total_single

    def test_cached_per_code(self):
        assert classification_table(UNIVERSAL) is classification_table(UNIVERSAL)
