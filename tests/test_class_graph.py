"""The site-class graph: validation, derived sharing edges, planning."""

import math

import numpy as np
import pytest

from repro.models.base import SiteClass
from repro.models.branch_site import BranchSiteModelA
from repro.models.class_graph import ClassPlan, SharingEdge, SiteClassGraph
from repro.models.sites import M1aModel, M2aModel


def _classes(*specs):
    return [SiteClass(label, p, bg, fg, positive=pos)
            for label, p, bg, fg, pos in specs]


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            SiteClassGraph.from_classes([])

    def test_duplicate_labels_rejected(self):
        classes = _classes(("x", 0.5, 0.1, 0.1, False), ("x", 0.5, 0.2, 0.2, False))
        with pytest.raises(ValueError, match="duplicate"):
            SiteClassGraph.from_classes(classes)

    def test_negative_weight_rejected(self):
        # SiteClass itself rejects negatives, so feed the graph directly.
        bad = SiteClass.__new__(SiteClass)
        object.__setattr__(bad, "label", "x")
        object.__setattr__(bad, "proportion", -0.25)
        object.__setattr__(bad, "omega_background", 0.1)
        object.__setattr__(bad, "omega_foreground", 0.1)
        object.__setattr__(bad, "positive", False)
        good = SiteClass("y", 1.0, 0.2, 0.2)
        with pytest.raises(ValueError, match="not a weight"):
            SiteClassGraph.from_classes([bad, good])

    def test_nan_weight_rejected(self):
        bad = SiteClass.__new__(SiteClass)
        object.__setattr__(bad, "label", "x")
        object.__setattr__(bad, "proportion", float("nan"))
        object.__setattr__(bad, "omega_background", 0.1)
        object.__setattr__(bad, "omega_foreground", 0.1)
        object.__setattr__(bad, "positive", False)
        good = SiteClass("y", 1.0, 0.2, 0.2)
        with pytest.raises(ValueError, match="not a weight"):
            SiteClassGraph.from_classes([bad, good])

    def test_sum_must_be_one(self):
        classes = _classes(("x", 0.5, 0.1, 0.1, False), ("y", 0.4, 0.2, 0.2, False))
        with pytest.raises(ValueError, match="sum to"):
            SiteClassGraph.from_classes(classes)

    def test_zero_weight_classes_allowed(self):
        classes = _classes(("x", 1.0, 0.1, 0.1, False), ("y", 0.0, 0.2, 0.2, False))
        graph = SiteClassGraph.from_classes(classes)
        assert graph.n_classes == 2


class TestDerivedEdges:
    def test_model_a_reproduces_historical_pairs(self, h1_model, bsm_values):
        graph = h1_model.site_class_graph(bsm_values)
        assert graph.labels == ("0", "1", "2a", "2b")
        # 0↔2a and 1↔2b share backgrounds; under H1 (ω2 ≠ 1) neither is full.
        assert graph.edges[0] is None and graph.edges[1] is None
        assert graph.edges[2] == SharingEdge(target=2, base=0, full=False)
        assert graph.edges[3] == SharingEdge(target=3, base=1, full=False)
        assert graph.shared_classes == (2, 3)

    def test_model_a_h0_full_share_for_2b(self, h0_model, bsm_values):
        values = {k: v for k, v in bsm_values.items() if k != "omega2"}
        graph = h0_model.site_class_graph(values)
        # ω2 = 1 makes class 2b's foreground match class 1's: a full share.
        assert graph.edges[3].full
        assert not graph.edges[2].full

    def test_site_models_fully_share_nothing_foreground(self):
        # M1a/M2a set bg == fg per class with distinct ω's: no edges at all.
        m2a = M2aModel()
        values = m2a.default_start(None)
        graph = m2a.site_class_graph(values)
        assert all(e is None for e in graph.edges)
        m1a = M1aModel()
        graph1 = m1a.site_class_graph(m1a.default_start(None))
        assert all(e is None for e in graph1.edges)

    def test_edge_targets_first_matching_class(self):
        classes = _classes(
            ("a", 0.25, 0.3, 0.3, False),
            ("b", 0.25, 0.3, 2.0, True),
            ("c", 0.25, 0.3, 2.0, True),
            ("d", 0.25, 0.7, 0.7, False),
        )
        graph = SiteClassGraph.from_classes(classes)
        assert graph.edges[1] == SharingEdge(target=1, base=0, full=False)
        # c shares with the *first* class carrying ω_bg = 0.3, not with b.
        assert graph.edges[2] == SharingEdge(target=2, base=0, full=False)
        assert graph.edges[3] is None


class TestViews:
    def test_labels_proportions_index(self, h1_model, bsm_values):
        graph = h1_model.site_class_graph(bsm_values)
        assert math.isclose(float(graph.proportions.sum()), 1.0)
        assert graph.index_of("2a") == 2
        with pytest.raises(KeyError, match="2c"):
            graph.index_of("2c")

    def test_positive_classes(self, h1_model, bsm_values):
        graph = h1_model.site_class_graph(bsm_values)
        assert graph.positive_indices == (2, 3)
        assert graph.positive_labels == ("2a", "2b")

    def test_distinct_omegas(self, h1_model, bsm_values):
        graph = h1_model.site_class_graph(bsm_values)
        assert graph.distinct_omegas() == [0.3, 1.0, 4.0]

    def test_iteration_and_len(self, h1_model, bsm_values):
        graph = h1_model.site_class_graph(bsm_values)
        assert len(graph) == 4
        assert [n.label for n in graph] == ["0", "1", "2a", "2b"]

    def test_repr_names_shares(self, h1_model, bsm_values):
        graph = h1_model.site_class_graph(bsm_values)
        text = repr(graph)
        assert "2a→0" in text and "2b→1" in text


class TestPlanning:
    def test_full_evaluation_derives_shared_classes(self, h1_model, bsm_values):
        graph = h1_model.site_class_graph(bsm_values)
        plans = graph.plan(full=True)
        assert [p.mode for p in plans] == ["populate", "populate", "derive", "derive"]
        assert plans[2].base == 0 and plans[3].base == 1
        assert not plans[2].full_share

    def test_dirty_update_with_state(self, h1_model, bsm_values):
        graph = h1_model.site_class_graph(bsm_values)
        plans = graph.plan(full=False, has_state=lambda i: True)
        # Partial shares cannot ride a dirty update: each class advances
        # its own persisted state instead.
        assert [p.mode for p in plans] == ["incremental"] * 4

    def test_dirty_update_full_share_still_derives(self, h0_model, bsm_values):
        values = {k: v for k, v in bsm_values.items() if k != "omega2"}
        graph = h0_model.site_class_graph(values)
        plans = graph.plan(full=False, has_state=lambda i: True)
        # 2b's share is full under H0, so it derives even on a dirty pass.
        assert plans[3].mode == "derive" and plans[3].full_share

    def test_missing_state_falls_back_to_populate(self, h1_model, bsm_values):
        graph = h1_model.site_class_graph(bsm_values)
        plans = graph.plan(full=False, has_state=lambda i: i == 0)
        assert plans[0].mode == "incremental"
        assert plans[1].mode == "populate"

    def test_skip_zero_reanchors_sharing(self):
        # When the would-be base has zero weight and is skipped, the
        # sharing chain re-anchors on the first class that actually runs.
        classes = _classes(
            ("a", 0.0, 0.3, 0.3, False),
            ("b", 0.6, 0.3, 2.0, True),
            ("c", 0.4, 0.3, 2.0, True),
        )
        graph = SiteClassGraph.from_classes(classes)
        plans = graph.plan(full=True, skip_zero=True)
        assert plans[0] == ClassPlan(0, "skip")
        assert plans[1].mode == "populate"
        assert plans[2] == ClassPlan(2, "derive", base=1, full_share=True)

    def test_static_edges_unused_without_runtime_anchor(self):
        classes = _classes(
            ("a", 0.0, 0.3, 0.3, False),
            ("b", 1.0, 0.3, 2.0, True),
        )
        graph = SiteClassGraph.from_classes(classes)
        # Statically b shares with a...
        assert graph.edges[1] is not None
        # ...but with a skipped, b must populate.
        plans = graph.plan(full=True, skip_zero=True)
        assert plans[1].mode == "populate"


class TestSiteClassValidation:
    def test_negative_proportion_raises(self):
        with pytest.raises(ValueError):
            SiteClass("x", -0.1, 0.5, 0.5)

    def test_nan_proportion_raises(self):
        with pytest.raises(ValueError):
            SiteClass("x", float("nan"), 0.5, 0.5)

    def test_nonfinite_omega_raises(self):
        with pytest.raises(ValueError, match="non-finite"):
            SiteClass("x", 0.5, float("inf"), 0.5)
        with pytest.raises(ValueError, match="non-finite"):
            SiteClass("x", 0.5, 0.5, float("nan"))

    def test_model_site_class_graph_matches_site_classes(self, h1_model, bsm_values):
        graph = h1_model.site_class_graph(bsm_values)
        classes = h1_model.site_classes(bsm_values)
        assert list(graph.nodes) == classes


class TestMixtureWeightGuards:
    def test_mixture_rejects_negative_weights(self):
        from repro.likelihood.mixture import mixture_log_likelihood

        class_lnl = np.zeros((2, 3))
        with pytest.raises(ValueError, match="weight"):
            mixture_log_likelihood(
                [], None, np.array([1.5, -0.5]), np.ones(3), class_lnl=class_lnl
            )

    def test_mixture_rejects_nan_weights(self):
        from repro.likelihood.mixture import mixture_log_likelihood

        class_lnl = np.zeros((2, 3))
        with pytest.raises(ValueError, match="weight"):
            mixture_log_likelihood(
                [], None, np.array([float("nan"), 1.0]), np.ones(3), class_lnl=class_lnl
            )

    def test_posteriors_reject_bad_weights(self):
        from repro.likelihood.mixture import class_posteriors

        class_lnl = np.zeros((2, 3))
        with pytest.raises(ValueError, match="weight"):
            class_posteriors(class_lnl, np.array([-0.2, 1.2]))
