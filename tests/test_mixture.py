"""Mixture combination and class posteriors."""

import numpy as np
import pytest

from repro.likelihood.mixture import (
    class_posteriors,
    mixture_log_likelihood,
    site_class_log_likelihoods,
)
from repro.likelihood.pruning import PruningResult


def _result(root_clv, scalers=None):
    n_patterns = root_clv.shape[1]
    return PruningResult(
        root_clv=root_clv,
        log_scalers=np.zeros(n_patterns) if scalers is None else scalers,
    )


@pytest.fixture
def pi():
    return np.array([0.5, 0.3, 0.2])


class TestSiteLogLikelihoods:
    def test_basic_dot_product(self, pi):
        clv = np.array([[1.0, 0.0], [0.0, 1.0], [0.0, 0.0]])
        res = _result(clv)
        lnl = res.site_log_likelihoods(pi)
        assert lnl == pytest.approx(np.log([0.5, 0.3]))

    def test_scalers_added(self, pi):
        clv = np.ones((3, 1))
        res = _result(clv, scalers=np.array([-5.0]))
        assert res.site_log_likelihoods(pi)[0] == pytest.approx(np.log(1.0) - 5.0)

    def test_stack_shape(self, pi):
        results = [_result(np.ones((3, 4))) for _ in range(2)]
        assert site_class_log_likelihoods(results, pi).shape == (2, 4)

    def test_empty_rejected(self, pi):
        with pytest.raises(ValueError):
            site_class_log_likelihoods([], pi)


class TestMixture:
    def test_single_class_is_identity(self, pi):
        clv = np.array([[0.2, 0.4], [0.1, 0.2], [0.3, 0.1]])
        res = _result(clv)
        lnl, per_pattern = mixture_log_likelihood([res], pi, [1.0], np.array([1.0, 1.0]))
        assert per_pattern == pytest.approx(res.site_log_likelihoods(pi))
        assert lnl == pytest.approx(per_pattern.sum())

    def test_two_class_weighted_sum(self, pi):
        a = _result(np.full((3, 1), 0.2))
        b = _result(np.full((3, 1), 0.6))
        lnl, _ = mixture_log_likelihood([a, b], pi, [0.25, 0.75], np.array([1.0]))
        expected = np.log(0.25 * 0.2 + 0.75 * 0.6)
        assert lnl == pytest.approx(expected)

    def test_pattern_weights_multiply(self, pi):
        res = _result(np.full((3, 2), 0.5))
        lnl, per_pattern = mixture_log_likelihood([res], pi, [1.0], np.array([3.0, 1.0]))
        assert lnl == pytest.approx(3 * per_pattern[0] + per_pattern[1])

    def test_scaler_mismatch_between_classes_handled(self, pi):
        # Class A un-scaled, class B carrying a -50 log scaler; mixture must
        # combine in log space without underflow.
        a = _result(np.full((3, 1), 0.3))
        b = _result(np.full((3, 1), 0.3), scalers=np.array([-50.0]))
        lnl, _ = mixture_log_likelihood([a, b], pi, [0.5, 0.5], np.array([1.0]))
        expected = np.log(0.5 * 0.3 + 0.5 * 0.3 * np.exp(-50.0))
        assert lnl == pytest.approx(expected)

    def test_zero_proportion_class_ignored(self, pi):
        a = _result(np.full((3, 1), 0.3))
        impossible = _result(np.zeros((3, 1)))  # -inf log-likelihood
        lnl, _ = mixture_log_likelihood(
            [a, impossible], pi, [1.0, 0.0], np.array([1.0])
        )
        assert lnl == pytest.approx(np.log(0.3))

    def test_count_mismatch(self, pi):
        res = _result(np.ones((3, 1)))
        with pytest.raises(ValueError, match="proportions"):
            mixture_log_likelihood([res], pi, [0.5, 0.5], np.array([1.0]))

    def test_weight_shape_mismatch(self, pi):
        res = _result(np.ones((3, 2)))
        with pytest.raises(ValueError, match="weight"):
            mixture_log_likelihood([res], pi, [1.0], np.array([1.0]))


class TestClassPosteriors:
    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        class_lnl = np.log(rng.random((3, 5)))
        post = class_posteriors(class_lnl, [0.2, 0.3, 0.5])
        assert np.allclose(post.sum(axis=0), 1.0)

    def test_dominant_class_wins(self):
        class_lnl = np.array([[0.0], [-50.0]])
        post = class_posteriors(class_lnl, [0.5, 0.5])
        assert post[0, 0] > 0.999

    def test_proportion_prior_matters(self):
        class_lnl = np.zeros((2, 1))  # equal likelihoods
        post = class_posteriors(class_lnl, [0.9, 0.1])
        assert post[0, 0] == pytest.approx(0.9)

    def test_zero_proportion_class_gets_zero_posterior(self):
        class_lnl = np.zeros((2, 1))
        post = class_posteriors(class_lnl, [1.0, 0.0])
        assert post[1, 0] == 0.0
