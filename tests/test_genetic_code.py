"""Genetic code tables and the sense-codon state space."""

import numpy as np
import pytest

from repro.codon.genetic_code import (
    NUCLEOTIDES,
    UNIVERSAL,
    VERTEBRATE_MITOCHONDRIAL,
    codon_index_array,
    get_genetic_code,
    is_transition,
    nucleotide_diff_positions,
)


class TestUniversalCode:
    def test_61_sense_codons(self):
        assert UNIVERSAL.n_states == 61

    def test_stop_codons(self):
        assert set(UNIVERSAL.stop_codons) == {"TAA", "TAG", "TGA"}

    def test_known_translations(self):
        assert UNIVERSAL.translate("ATG") == "M"
        assert UNIVERSAL.translate("TGG") == "W"
        assert UNIVERSAL.translate("TTT") == "F"
        assert UNIVERSAL.translate("AAA") == "K"
        assert UNIVERSAL.translate("TAA") == "*"

    def test_case_and_rna_tolerance(self):
        assert UNIVERSAL.translate("atg") == "M"
        assert UNIVERSAL.translate_sequence("AUGUUU") == "MF"

    def test_sense_codons_exclude_stops(self):
        assert not any(UNIVERSAL.is_stop(c) for c in UNIVERSAL.sense_codons)

    def test_codon_index_is_contiguous(self):
        index = UNIVERSAL.codon_index
        assert sorted(index.values()) == list(range(61))

    def test_codon_ordering_is_tcag(self):
        # First sense codon in TCAG enumeration is TTT; last is GGG.
        assert UNIVERSAL.sense_codons[0] == "TTT"
        assert UNIVERSAL.sense_codons[-1] == "GGG"

    def test_translate_rejects_garbage(self):
        with pytest.raises(ValueError):
            UNIVERSAL.translate("XYZ")

    def test_translate_sequence_rejects_partial_codon(self):
        with pytest.raises(ValueError, match="multiple of 3"):
            UNIVERSAL.translate_sequence("ATGA")

    def test_synonymy(self):
        assert UNIVERSAL.synonymous("TTT", "TTC")  # both Phe
        assert not UNIVERSAL.synonymous("TTT", "TTA")  # Phe vs Leu

    def test_synonymy_rejects_stops(self):
        with pytest.raises(ValueError):
            UNIVERSAL.synonymous("TAA", "TTT")


class TestMitochondrialCode:
    def test_60_sense_codons(self):
        assert VERTEBRATE_MITOCHONDRIAL.n_states == 60

    def test_mito_specific_assignments(self):
        assert VERTEBRATE_MITOCHONDRIAL.translate("TGA") == "W"
        assert VERTEBRATE_MITOCHONDRIAL.translate("ATA") == "M"
        assert VERTEBRATE_MITOCHONDRIAL.translate("AGA") == "*"
        assert VERTEBRATE_MITOCHONDRIAL.translate("AGG") == "*"


class TestLookup:
    def test_get_by_name(self):
        assert get_genetic_code("universal") is UNIVERSAL
        assert get_genetic_code("vertmt") is VERTEBRATE_MITOCHONDRIAL

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown genetic code"):
            get_genetic_code("klingon")


class TestNucleotideHelpers:
    def test_alphabet(self):
        assert NUCLEOTIDES == "TCAG"

    def test_diff_positions(self):
        assert nucleotide_diff_positions("TTT", "TTC") == (2,)
        assert nucleotide_diff_positions("TTT", "TCC") == (1, 2)
        assert nucleotide_diff_positions("TTT", "TTT") == ()

    @pytest.mark.parametrize(
        "a,b,expected",
        [("A", "G", True), ("G", "A", True), ("C", "T", True), ("A", "C", False), ("G", "T", False)],
    )
    def test_transitions(self, a, b, expected):
        assert is_transition(a, b) is expected

    def test_transition_rejects_identical(self):
        with pytest.raises(ValueError):
            is_transition("A", "A")

    def test_codon_index_array_covers_sense_space(self):
        idx = codon_index_array(UNIVERSAL)
        assert idx.shape == (61,)
        assert np.all(np.diff(idx) > 0)
