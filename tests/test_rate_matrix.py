"""Q-matrix assembly invariants (paper Eq. 1 and the Q = SΠ factorisation)."""

import numpy as np
import pytest

from repro.codon.genetic_code import UNIVERSAL
from repro.codon.matrix import (
    build_rate_matrix,
    exchangeability_matrix,
    mean_rate,
    mixture_scale_factor,
)


@pytest.fixture(scope="module")
def pi():
    rng = np.random.default_rng(11)
    raw = rng.dirichlet(np.full(61, 5.0))
    return raw / raw.sum()


class TestExchangeability:
    def test_symmetric(self):
        r = exchangeability_matrix(2.0, 0.5)
        assert np.allclose(r, r.T)

    def test_eq1_entries(self):
        kappa, omega = 3.0, 0.25
        r = exchangeability_matrix(kappa, omega)
        idx = UNIVERSAL.codon_index
        # syn transversion CGT->CGG: factor 1
        assert r[idx["CGT"], idx["CGG"]] == pytest.approx(1.0)
        # syn transition TTT->TTC: factor kappa
        assert r[idx["TTT"], idx["TTC"]] == pytest.approx(kappa)
        # nonsyn transversion TTT->TAT: factor omega
        assert r[idx["TTT"], idx["TAT"]] == pytest.approx(omega)
        # nonsyn transition TTT->CTT: factor kappa*omega
        assert r[idx["TTT"], idx["CTT"]] == pytest.approx(kappa * omega)
        # multiple difference TTT->TCC: zero
        assert r[idx["TTT"], idx["TCC"]] == 0.0

    def test_omega_zero_allowed(self):
        r = exchangeability_matrix(2.0, 0.0)
        assert r.max() > 0  # synonymous entries remain

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            exchangeability_matrix(0.0, 0.5)
        with pytest.raises(ValueError):
            exchangeability_matrix(2.0, -0.1)


class TestBuildRateMatrix:
    def test_rows_sum_to_zero(self, pi):
        m = build_rate_matrix(2.0, 0.5, pi)
        assert np.allclose(m.q.sum(axis=1), 0.0, atol=1e-12)

    def test_unit_mean_rate(self, pi):
        m = build_rate_matrix(2.0, 0.5, pi)
        assert mean_rate(m.q, pi) == pytest.approx(1.0)

    def test_detailed_balance(self, pi):
        m = build_rate_matrix(3.0, 1.7, pi)
        m.check_reversibility()

    def test_s_is_symmetric_including_diagonal_relation(self, pi):
        m = build_rate_matrix(2.0, 0.5, pi)
        assert np.allclose(m.s[np.triu_indices(61, 1)], m.s.T[np.triu_indices(61, 1)])
        assert np.allclose(m.q, m.s * pi[None, :])

    def test_off_diagonal_nonnegative(self, pi):
        m = build_rate_matrix(2.0, 0.5, pi)
        off = m.q.copy()
        np.fill_diagonal(off, 0.0)
        assert off.min() >= 0.0

    def test_scale_none_keeps_raw_rates(self, pi):
        raw = build_rate_matrix(2.0, 0.5, pi, scale="none")
        assert raw.scale == 1.0
        assert mean_rate(raw.q, pi) != pytest.approx(1.0)

    def test_explicit_scale(self, pi):
        raw = build_rate_matrix(2.0, 0.5, pi, scale="none")
        factor = mean_rate(raw.q, pi)
        scaled = build_rate_matrix(2.0, 0.5, pi, scale=factor)
        assert mean_rate(scaled.q, pi) == pytest.approx(1.0)
        assert scaled.scale == pytest.approx(factor)

    def test_raw_mean_rate_roundtrip(self, pi):
        m = build_rate_matrix(2.0, 0.5, pi)
        raw = build_rate_matrix(2.0, 0.5, pi, scale="none")
        assert m.raw_mean_rate() == pytest.approx(mean_rate(raw.q, pi))

    def test_omega_scales_nonsynonymous_rates_only(self, pi):
        idx = UNIVERSAL.codon_index
        low = build_rate_matrix(2.0, 0.2, pi, scale="none")
        high = build_rate_matrix(2.0, 2.0, pi, scale="none")
        # Synonymous entry unchanged.
        i, j = idx["TTT"], idx["TTC"]
        assert low.q[i, j] == pytest.approx(high.q[i, j])
        # Non-synonymous entry scales by omega ratio.
        i, j = idx["TTT"], idx["CTT"]
        assert high.q[i, j] / low.q[i, j] == pytest.approx(10.0)

    def test_wrong_pi_dimension(self):
        with pytest.raises(ValueError, match="sense codons"):
            build_rate_matrix(2.0, 0.5, np.full(60, 1 / 60))

    def test_zero_pi_rejected(self):
        pi = np.full(61, 1 / 61)
        pi[0] = 0.0
        pi[1] += 1 / 61
        with pytest.raises(ValueError, match="strictly positive"):
            build_rate_matrix(2.0, 0.5, pi)

    def test_bad_scale_mode(self, pi):
        with pytest.raises(ValueError, match="scale"):
            build_rate_matrix(2.0, 0.5, pi, scale="bogus")
        with pytest.raises(ValueError):
            build_rate_matrix(2.0, 0.5, pi, scale=-1.0)


class TestMixtureScale:
    def test_weighted_average(self):
        assert mixture_scale_factor([1.0, 3.0], [0.5, 0.5]) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            mixture_scale_factor([1.0], [0.5, 0.5])
        with pytest.raises(ValueError):
            mixture_scale_factor([1.0, 1.0], [0.7, 0.7])
