"""Tree statistics: patristic matrix, depths, imbalance."""

import numpy as np
import pytest

from repro.trees.newick import parse_newick
from repro.trees.simulate import simulate_yule_tree
from repro.trees.stats import colless_index, leaf_depths, patristic_distance_matrix


class TestPatristicMatrix:
    def test_hand_computed_triplet(self):
        tree = parse_newick("(A:0.1,B:0.2,C:0.4);")
        dist = patristic_distance_matrix(tree)
        assert dist[0, 1] == pytest.approx(0.3)
        assert dist[0, 2] == pytest.approx(0.5)
        assert dist[1, 2] == pytest.approx(0.6)

    def test_nested(self):
        tree = parse_newick("((A:0.1,B:0.2):0.05,C:0.3,D:0.4);")
        dist = patristic_distance_matrix(tree)
        names = tree.leaf_names()
        a, b, c, d = (names.index(x) for x in "ABCD")
        assert dist[a, b] == pytest.approx(0.3)
        assert dist[a, c] == pytest.approx(0.1 + 0.05 + 0.3)
        assert dist[b, d] == pytest.approx(0.2 + 0.05 + 0.4)

    def test_symmetric_zero_diagonal(self):
        tree = simulate_yule_tree(12, seed=3)
        dist = patristic_distance_matrix(tree)
        assert np.allclose(dist, dist.T)
        assert np.all(np.diag(dist) == 0)
        off = dist[~np.eye(12, dtype=bool)]
        assert np.all(off > 0)

    def test_agrees_with_incidence_matrix_route(self):
        from repro.trees.least_squares import branch_incidence_matrix

        tree = simulate_yule_tree(9, seed=5)
        a = branch_incidence_matrix(tree)
        b = np.array(tree.branch_lengths())
        via_incidence = a @ b
        dist = patristic_distance_matrix(tree)
        row = 0
        for i in range(9):
            for j in range(i + 1, 9):
                assert dist[i, j] == pytest.approx(via_incidence[row], abs=1e-12)
                row += 1

    def test_ols_recovers_from_patristic(self):
        from repro.trees.least_squares import least_squares_branch_lengths

        tree = simulate_yule_tree(8, seed=2)
        recovered = least_squares_branch_lengths(tree, patristic_distance_matrix(tree))
        assert np.allclose(
            recovered, np.maximum(tree.branch_lengths(), 1e-6), atol=1e-9
        )


class TestLeafDepths:
    def test_star_tree(self):
        tree = parse_newick("(A:0.1,B:0.2,C:0.3);")
        assert leaf_depths(tree).tolist() == pytest.approx([0.1, 0.2, 0.3])

    def test_nested_depths(self):
        tree = parse_newick("((A:0.1,B:0.2):0.5,C:0.3,D:0.4);")
        depths = dict(zip(tree.leaf_names(), leaf_depths(tree)))
        assert depths["A"] == pytest.approx(0.6)
        assert depths["B"] == pytest.approx(0.7)
        assert depths["C"] == pytest.approx(0.3)


class TestColless:
    def test_balanced_four_taxa(self):
        tree = parse_newick("((A,B),(C,D));")
        assert colless_index(tree) == 0

    def test_caterpillar(self):
        # (((A,B),C),D): splits |2-1| + |1-1| + |3-1| = 3
        tree = parse_newick("(((A,B),C),D);")
        assert colless_index(tree) == 3

    def test_increases_with_imbalance(self):
        balanced = parse_newick("(((A,B),(C,D)),((E,F),(G,H)));")
        caterpillar = parse_newick("(((((((A,B),C),D),E),F),G),H);")
        assert colless_index(balanced) < colless_index(caterpillar)
