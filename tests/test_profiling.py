"""Profiling helpers."""

import numpy as np

from repro.core.engine import make_engine
from repro.models.m0 import M0Model
from repro.utils.profiling import evaluation_breakdown, profile_call


def test_profile_call_returns_result_and_hotspots():
    def work(n):
        total = 0.0
        for k in range(n):
            total += np.sin(k)
        return total

    result, hotspots = profile_call(work, 2000, top=5)
    assert isinstance(result, float)
    assert 0 < len(hotspots) <= 5
    assert all(h.calls >= 1 for h in hotspots)
    assert all(h.total_seconds >= 0 for h in hotspots)


def test_evaluation_breakdown_fractions():
    from repro.alignment.simulate import simulate_alignment
    from repro.trees.newick import parse_newick

    tree = parse_newick("(A:0.1,B:0.2,C:0.15);")
    values = {"kappa": 2.0, "omega": 0.5}
    sim = simulate_alignment(tree, M0Model(), values, 40, seed=2)
    engine = make_engine("slim")
    bound = engine.bind(tree, sim.alignment, M0Model())
    breakdown = evaluation_breakdown(engine, bound, values, n_evaluations=2)
    fractions = [breakdown[k] for k in ("eigh", "expm", "clv")]
    assert all(0 <= f <= 1 for f in fractions)
    assert abs(sum(fractions) - 1.0) < 1e-9
    assert breakdown["total_seconds"] > 0
