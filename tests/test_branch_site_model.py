"""Branch-site model A: Table I structure and parameterisation."""

import numpy as np
import pytest

from repro.models.branch_site import BranchSiteModelA


@pytest.fixture
def h1():
    return BranchSiteModelA(fix_omega2=False)


@pytest.fixture
def h0():
    return BranchSiteModelA(fix_omega2=True)


@pytest.fixture
def values():
    return {"kappa": 2.5, "omega0": 0.3, "omega2": 4.0, "p0": 0.5, "p1": 0.3}


class TestParameterSets:
    def test_h1_has_five_params(self, h1):
        assert h1.param_names == ("kappa", "omega0", "omega2", "p0", "p1")

    def test_h0_has_four_params(self, h0):
        assert h0.param_names == ("kappa", "omega0", "p0", "p1")
        assert h0.hypothesis == "H0"

    def test_pack_unpack_roundtrip_h1(self, h1, values):
        h1.check_roundtrip(values)

    def test_pack_unpack_roundtrip_h0(self, h0, values):
        h0.check_roundtrip({k: values[k] for k in h0.param_names})

    def test_unpack_always_valid(self, h1):
        rng = np.random.default_rng(1)
        for _ in range(30):
            v = h1.unpack(rng.normal(scale=5, size=5))
            assert v["kappa"] > 0
            assert 0 < v["omega0"] < 1
            assert v["omega2"] > 1
            assert v["p0"] > 0 and v["p1"] > 0 and v["p0"] + v["p1"] < 1

    def test_validate_rejects_extra_and_missing(self, h1, values):
        with pytest.raises(ValueError, match="missing"):
            h1.validate({k: v for k, v in values.items() if k != "kappa"})
        with pytest.raises(ValueError, match="unexpected"):
            h1.validate({**values, "bogus": 1.0})

    def test_unpack_shape_checked(self, h1):
        with pytest.raises(ValueError, match="expected 5"):
            h1.unpack(np.zeros(4))


class TestSiteClasses:
    def test_table1_structure_h1(self, h1, values):
        classes = h1.site_classes(values)
        assert [c.label for c in classes] == ["0", "1", "2a", "2b"]
        c0, c1, c2a, c2b = classes
        # proportions per Table I
        assert c0.proportion == pytest.approx(0.5)
        assert c1.proportion == pytest.approx(0.3)
        total = 0.8
        assert c2a.proportion == pytest.approx(0.2 * 0.5 / total)
        assert c2b.proportion == pytest.approx(0.2 * 0.3 / total)
        # omegas per Table I
        assert (c0.omega_background, c0.omega_foreground) == (0.3, 0.3)
        assert (c1.omega_background, c1.omega_foreground) == (1.0, 1.0)
        assert (c2a.omega_background, c2a.omega_foreground) == (0.3, 4.0)
        assert (c2b.omega_background, c2b.omega_foreground) == (1.0, 4.0)

    def test_proportions_sum_to_one(self, h1, values):
        assert h1.proportions(values).sum() == pytest.approx(1.0)

    def test_h0_forces_omega2_one(self, h0, values):
        classes = h0.site_classes({k: values[k] for k in h0.param_names})
        assert classes[2].omega_foreground == 1.0
        assert classes[3].omega_foreground == 1.0

    def test_distinct_omegas_bounded_by_three(self, h1, h0, values):
        assert h1.distinct_omegas(values) == sorted([0.3, 1.0, 4.0])
        h0_values = {k: values[k] for k in h0.param_names}
        assert h0.distinct_omegas(h0_values) == sorted([0.3, 1.0])

    def test_degenerate_total_rejected(self, h1, values):
        bad = dict(values, p0=0.7, p1=0.3)
        with pytest.raises(ValueError, match="p0 \\+ p1"):
            h1.site_classes(bad)


class TestStartValuesAndNull:
    def test_default_start_valid(self, h1):
        start = h1.default_start()
        classes = h1.site_classes(start)
        assert len(classes) == 4

    def test_seeded_start_reproducible(self, h1):
        assert h1.default_start(rng=42) == h1.default_start(rng=42)

    def test_seeded_start_jitters(self, h1):
        assert h1.default_start(rng=1) != h1.default_start()

    def test_seeded_start_respects_bounds(self, h1):
        for seed in range(25):
            start = h1.default_start(rng=seed)
            assert 0 < start["omega0"] < 1
            assert start["omega2"] > 1
            assert start["p0"] + start["p1"] < 1

    def test_null_model_projection(self, h1, values):
        null = h1.null_model()
        projected = h1.to_null_values(values)
        assert set(projected) == set(null.param_names)
        assert "omega2" not in projected
