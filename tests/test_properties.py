"""Property-based tests (hypothesis) on the core mathematical invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.alignment.msa import CodonAlignment
from repro.alignment.patterns import compress_patterns
from repro.codon.genetic_code import UNIVERSAL
from repro.codon.matrix import build_rate_matrix
from repro.core.eigen import decompose
from repro.core.expm import transition_matrix_syrk
from repro.models.branch_site import BranchSiteModelA
from repro.models.m0 import M0Model
from repro.models.parameters import simplex_pack, simplex_unpack
from repro.trees.newick import parse_newick, write_newick
from repro.trees.simulate import simulate_yule_tree
from repro.utils.numerics import logsumexp_weighted

# Reusable strategies -------------------------------------------------------

kappas = st.floats(min_value=0.05, max_value=20.0, allow_nan=False)
omegas = st.floats(min_value=0.01, max_value=10.0, allow_nan=False)
branch_lengths = st.floats(min_value=0.0, max_value=5.0, allow_nan=False)
seeds = st.integers(min_value=0, max_value=2**31 - 1)

_slow = settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])


def _dirichlet_pi(seed: int) -> np.ndarray:
    return np.random.default_rng(seed).dirichlet(np.full(61, 5.0))


class TestTransitionMatrixProperties:
    @_slow
    @given(kappa=kappas, omega=omegas, t=branch_lengths, seed=seeds)
    def test_p_is_stochastic(self, kappa, omega, t, seed):
        pi = _dirichlet_pi(seed)
        decomp = decompose(build_rate_matrix(kappa, omega, pi))
        p = transition_matrix_syrk(decomp, t)
        assert np.all(p >= 0)
        assert np.allclose(p.sum(axis=1), 1.0, atol=1e-9)

    @_slow
    @given(kappa=kappas, omega=omegas, seed=seeds,
           a=st.floats(min_value=0.0, max_value=1.5),
           b=st.floats(min_value=0.0, max_value=1.5))
    def test_chapman_kolmogorov(self, kappa, omega, seed, a, b):
        pi = _dirichlet_pi(seed)
        decomp = decompose(build_rate_matrix(kappa, omega, pi))
        pa = transition_matrix_syrk(decomp, a, clip_negative=False)
        pb = transition_matrix_syrk(decomp, b, clip_negative=False)
        pab = transition_matrix_syrk(decomp, a + b, clip_negative=False)
        assert np.allclose(pa @ pb, pab, atol=1e-9)

    @_slow
    @given(kappa=kappas, omega=omegas, t=branch_lengths, seed=seeds)
    def test_detailed_balance_of_p(self, kappa, omega, t, seed):
        pi = _dirichlet_pi(seed)
        decomp = decompose(build_rate_matrix(kappa, omega, pi))
        p = transition_matrix_syrk(decomp, t, clip_negative=False)
        flux = pi[:, None] * p
        assert np.allclose(flux, flux.T, atol=1e-10)

    @_slow
    @given(kappa=kappas, omega=omegas, seed=seeds)
    def test_stationarity(self, kappa, omega, seed):
        # pi P(t) = pi for every t.
        pi = _dirichlet_pi(seed)
        decomp = decompose(build_rate_matrix(kappa, omega, pi))
        p = transition_matrix_syrk(decomp, 0.7, clip_negative=False)
        assert np.allclose(pi @ p, pi, atol=1e-10)


class TestModelTransformProperties:
    @settings(max_examples=50, deadline=None)
    @given(x=st.lists(st.floats(min_value=-25, max_value=25), min_size=5, max_size=5))
    def test_h1_unpack_pack_identity(self, x):
        model = BranchSiteModelA()
        values = model.unpack(np.array(x))
        back = model.unpack(model.pack(values))
        for key in values:
            assert back[key] == pytest.approx(values[key], rel=1e-6)

    @settings(max_examples=50, deadline=None)
    @given(
        p0=st.floats(min_value=1e-4, max_value=0.99),
        p1=st.floats(min_value=1e-4, max_value=0.99),
    )
    def test_simplex_roundtrip(self, p0, p1):
        total = p0 + p1
        if total >= 0.999:  # renormalise into the open simplex
            p0, p1 = 0.95 * p0 / total, 0.95 * p1 / total
        back = simplex_unpack(*simplex_pack(p0, p1))
        assert back[0] == pytest.approx(p0, rel=1e-6)
        assert back[1] == pytest.approx(p1, rel=1e-6)

    @settings(max_examples=50, deadline=None)
    @given(x=st.lists(st.floats(min_value=-30, max_value=30), min_size=5, max_size=5))
    def test_site_class_proportions_always_simplex(self, x):
        model = BranchSiteModelA()
        values = model.unpack(np.array(x))
        props = model.proportions(values)
        assert np.all(props >= 0)
        assert props.sum() == pytest.approx(1.0)


class TestNewickProperties:
    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(min_value=3, max_value=40), seed=seeds)
    def test_parse_write_roundtrip(self, n, seed):
        tree = simulate_yule_tree(n, seed=seed)
        again = parse_newick(write_newick(tree))
        assert sorted(again.leaf_names()) == sorted(tree.leaf_names())
        assert again.n_branches == tree.n_branches
        assert again.total_tree_length() == pytest.approx(
            tree.total_tree_length(), rel=1e-4
        )


class TestPatternCompressionProperties:
    @_slow
    @given(seed=seeds, n_codons=st.integers(min_value=1, max_value=60))
    def test_likelihood_invariant_under_compression(self, seed, n_codons):
        # Compressing patterns must not change the total lnL.
        from repro.core.engine import make_engine

        rng = np.random.default_rng(seed)
        tree = simulate_yule_tree(4, seed=rng)
        model = M0Model()
        values = {"kappa": 2.0, "omega": 0.5}
        from repro.alignment.simulate import simulate_alignment

        sim = simulate_alignment(tree, model, values, n_codons=n_codons, seed=rng)
        pi = np.full(61, 1 / 61)
        bound = make_engine("slim").bind(tree, sim.alignment, model, pi=pi)
        lnl_compressed = bound.log_likelihood(values)

        # Force a degenerate "no compression" by evaluating per-site sums:
        per_site_total = 0.0
        for col in range(sim.alignment.n_codons):
            single = CodonAlignment(
                names=list(sim.alignment.names),
                states=sim.alignment.states[:, [col]].copy(),
                code=sim.alignment.code,
            )
            b1 = make_engine("slim").bind(tree, single, model, pi=pi)
            per_site_total += b1.log_likelihood(values)
        assert lnl_compressed == pytest.approx(per_site_total, abs=1e-8)

    @settings(max_examples=30, deadline=None)
    @given(seed=seeds)
    def test_weights_partition_sites(self, seed):
        rng = np.random.default_rng(seed)
        states = rng.integers(0, 61, size=(3, 25)).astype(np.int32)
        aln = CodonAlignment(names=["a", "b", "c"], states=states, code=UNIVERSAL)
        pat = compress_patterns(aln)
        assert pat.weights.sum() == 25
        # Every site maps to a pattern identical to its own column.
        for site in range(25):
            p = pat.site_to_pattern[site]
            assert np.array_equal(pat.alignment.states[:, p], states[:, site])


class TestLogsumexpProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        logs=st.lists(st.floats(min_value=-500, max_value=0), min_size=2, max_size=6),
        seed=seeds,
    )
    def test_matches_naive_when_safe(self, logs, seed):
        rng = np.random.default_rng(seed)
        w = rng.dirichlet(np.ones(len(logs)))
        lv = np.array(logs)[:, None]
        ours = logsumexp_weighted(lv, w)[0]
        naive = np.log(np.sum(w * np.exp(np.array(logs))))
        if np.isfinite(naive):
            assert ours == pytest.approx(naive, rel=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(shift=st.floats(min_value=-200, max_value=200))
    def test_shift_equivariance(self, shift):
        lv = np.array([[-3.0], [-1.0]])
        w = np.array([0.4, 0.6])
        assert logsumexp_weighted(lv + shift, w)[0] == pytest.approx(
            logsumexp_weighted(lv, w)[0] + shift
        )
