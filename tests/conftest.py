"""Shared fixtures: a small branch-site problem every layer can chew on."""

from __future__ import annotations

import numpy as np
import pytest

from repro.alignment.simulate import simulate_alignment
from repro.models.branch_site import BranchSiteModelA
from repro.trees.newick import parse_newick

#: Engine names exercised by parametrised engine tests.
ENGINE_NAMES = ("codeml", "slim", "slim-v2")


@pytest.fixture(scope="session")
def small_tree():
    """Unrooted 5-taxon tree with an internal foreground branch."""
    return parse_newick("((A:0.2,B:0.1):0.08 #1,(C:0.15,D:0.12):0.05,E:0.3);")


@pytest.fixture(scope="session")
def bsm_values():
    return {"kappa": 2.5, "omega0": 0.3, "omega2": 4.0, "p0": 0.5, "p1": 0.3}


@pytest.fixture(scope="session")
def h1_model():
    return BranchSiteModelA(fix_omega2=False)


@pytest.fixture(scope="session")
def h0_model():
    return BranchSiteModelA(fix_omega2=True)


@pytest.fixture(scope="session")
def small_sim(small_tree, h1_model, bsm_values):
    """120-codon alignment simulated under the fixture tree/values."""
    return simulate_alignment(small_tree, h1_model, bsm_values, n_codons=120, seed=7)


@pytest.fixture(scope="session")
def uniform_pi():
    return np.full(61, 1.0 / 61.0)
