"""CLI end-to-end on tiny inputs."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_commands_exist(self):
        parser = build_parser()
        for argv in (
            ["run", "--seqfile", "a", "--treefile", "b"],
            ["simulate", "--prefix", "x"],
            ["datasets", "--outdir", "d"],
            ["scan", "--seqfile", "a", "--treefile", "b"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_run_requires_inputs(self, capsys):
        rc = main(["run"])
        assert rc == 2
        assert "provide --ctl" in capsys.readouterr().err


@pytest.fixture(scope="module")
def tiny_dataset(tmp_path_factory):
    prefix = tmp_path_factory.mktemp("cli") / "tiny"
    rc = main(
        ["simulate", "--species", "5", "--codons", "40", "--seed", "3", "--prefix", str(prefix)]
    )
    assert rc == 0
    return prefix


class TestSimulate:
    def test_outputs_written(self, tiny_dataset):
        assert (tiny_dataset.parent / "tiny.phy").exists()
        assert (tiny_dataset.parent / "tiny.nwk").exists()

    def test_tree_has_foreground_mark(self, tiny_dataset):
        assert "#1" in (tiny_dataset.parent / "tiny.nwk").read_text()


class TestRun:
    def test_run_to_file(self, tiny_dataset, tmp_path, capsys):
        out = tmp_path / "report.mlc"
        rc = main(
            [
                "run",
                "--seqfile", str(tiny_dataset) + ".phy",
                "--treefile", str(tiny_dataset) + ".nwk",
                "--engine", "slim",
                "--max-iterations", "3",
                "--out", str(out),
            ]
        )
        assert rc == 0
        text = out.read_text()
        assert "Likelihood ratio test" in text
        assert "engine: slim" in text

    def test_run_stdout(self, tiny_dataset, capsys):
        rc = main(
            [
                "run",
                "--seqfile", str(tiny_dataset) + ".phy",
                "--treefile", str(tiny_dataset) + ".nwk",
                "--max-iterations", "2",
            ]
        )
        assert rc == 0
        assert "lnL" in capsys.readouterr().out

    def test_run_with_ctl(self, tiny_dataset, tmp_path, capsys):
        ctl = tmp_path / "run.ctl"
        ctl.write_text(
            f"seqfile = {tiny_dataset}.phy\n"
            f"treefile = {tiny_dataset}.nwk\n"
            "engine = codeml\n"
            "max_iterations = 2\n"
        )
        rc = main(["run", "--ctl", str(ctl)])
        assert rc == 0
        assert "engine: codeml" in capsys.readouterr().out


class TestScan:
    def _argv(self, tiny_dataset, *extra):
        return [
            "scan",
            "--seqfile", str(tiny_dataset) + ".phy",
            "--treefile", str(tiny_dataset) + ".nwk",
            "--internal-only",
            "--max-iterations", "1",
            *extra,
        ]

    def test_scan_end_to_end(self, tiny_dataset, capsys):
        rc = main(self._argv(tiny_dataset))
        assert rc == 0
        out = capsys.readouterr().out
        assert "branch scan" in out
        assert "p (chi2_1)" in out
        assert "tasks" in out and "likelihood evaluations" in out  # summary block

    def test_scan_survey_mode(self, tiny_dataset, capsys):
        rc = main(self._argv(tiny_dataset, "--survey"))
        assert rc == 0
        out = capsys.readouterr().out
        assert "all-branches positive-selection survey" in out
        assert "p (Holm)" in out
        assert "family-wise alpha = 0.05" in out

    def test_scan_survey_with_bsrel_model(self, tiny_dataset, tmp_path, capsys):
        journal = tmp_path / "bsrel.jsonl"
        rc = main(self._argv(
            tiny_dataset, "--survey", "--model", "bsrel:2",
            "--journal", str(journal),
        ))
        assert rc == 0
        out = capsys.readouterr().out
        assert "model: bsrel:2" in out
        # The journal records which model produced each branch's test.
        from repro.io.results_io import ResultJournal

        results = ResultJournal(str(journal)).load()
        assert results and all(r.model == "bsrel:2" for r in results)

    def test_scan_bad_model_spec_fails_fast(self, tiny_dataset, capsys):
        rc = main(self._argv(tiny_dataset, "--model", "m8"))
        assert rc == 2
        assert "unknown model spec" in capsys.readouterr().err

    def test_scan_journal_and_resume(self, tiny_dataset, tmp_path, capsys):
        journal = tmp_path / "scan.jsonl"
        rc = main(self._argv(tiny_dataset, "--journal", str(journal)))
        assert rc == 0
        assert journal.exists()
        capsys.readouterr()
        rc = main(self._argv(tiny_dataset, "--journal", str(journal), "--resume"))
        assert rc == 0
        out = capsys.readouterr().out
        assert "resumed from journal" in out

    def test_scan_report_to_file(self, tiny_dataset, tmp_path):
        out = tmp_path / "scan.txt"
        rc = main(self._argv(tiny_dataset, "--out", str(out)))
        assert rc == 0
        assert "branch scan" in out.read_text()

    def test_scan_progress_on_stderr_by_default(self, tiny_dataset, capsys):
        rc = main(self._argv(tiny_dataset))
        assert rc == 0
        assert "ok (2*delta=" in capsys.readouterr().err

    def test_scan_quiet_suppresses_progress(self, tiny_dataset, capsys):
        rc = main(self._argv(tiny_dataset, "--quiet"))
        assert rc == 0
        captured = capsys.readouterr()
        assert "ok (2*delta=" not in captured.err
        assert "branch scan" in captured.out  # report still printed

    def test_scan_executor_inline(self, tiny_dataset, capsys):
        rc = main(self._argv(tiny_dataset, "--executor", "inline"))
        assert rc == 0
        assert "branch scan" in capsys.readouterr().out

    def test_scan_socket_without_workers_fails_cleanly(self, tiny_dataset, capsys):
        rc = main(self._argv(
            tiny_dataset, "--executor", "socket",
            "--bind", "127.0.0.1:0", "--worker-wait", "0.3",
        ))
        assert rc == 2
        captured = capsys.readouterr()
        assert "listening on 127.0.0.1:" in captured.err
        assert "cannot set up" in captured.err or "worker" in captured.err


class TestWorkerCommand:
    def test_worker_requires_connect(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["worker"])

    def test_worker_rejects_malformed_address(self, capsys):
        rc = main(["worker", "--connect", "nope"])
        assert rc == 2
        assert "host:port" in capsys.readouterr().err

    @pytest.mark.slow
    def test_scan_with_socket_worker_end_to_end(self, tiny_dataset, tmp_path, capsys):
        """Full CLI loop: the scan coordinator and a ``slimcodeml
        worker`` subprocess on localhost produce a normal report with
        socket-worker attribution in the summary block."""
        import os
        import re
        import socket as socketlib
        import subprocess
        import sys as _sys

        # The CLI builds its own executor, so both sides need a port
        # known up front: bind-and-release an ephemeral one.
        probe = socketlib.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        worker = subprocess.Popen(
            [_sys.executable, "-m", "repro.cli", "worker",
             "--connect", f"127.0.0.1:{port}", "--name", "cliworker"],
            env={**os.environ, "PYTHONPATH": "src"},
        )
        try:
            rc = main(self._scan_argv(tiny_dataset, port))
            assert rc == 0
            out = capsys.readouterr().out
            assert "branch scan" in out
            assert re.search(r"workers\s*:\s*cliworker", out)
        finally:
            worker.terminate()
            worker.wait(timeout=10)

    @staticmethod
    def _scan_argv(tiny_dataset, port):
        return [
            "scan",
            "--seqfile", str(tiny_dataset) + ".phy",
            "--treefile", str(tiny_dataset) + ".nwk",
            "--internal-only",
            "--max-iterations", "1",
            "--quiet",
            "--executor", "socket",
            "--bind", f"127.0.0.1:{port}",
            "--worker-wait", "30",
        ]


class TestDatasets:
    def test_writes_requested_subset(self, tmp_path, capsys):
        rc = main(["datasets", "--outdir", str(tmp_path), "--only", "iii"])
        assert rc == 0
        assert (tmp_path / "dataset_iii.phy").exists()
        assert (tmp_path / "dataset_iii.nwk").exists()
        assert "25 species x 67 codons" in capsys.readouterr().out
