"""Stochastic substitution mapping: shapes, determinism, calibration,
and the journal payload the scan report renders."""

import numpy as np
import pytest

from repro.alignment.simulate import simulate_alignment
from repro.core.engine import make_engine
from repro.core.recovery import RecoveryConfig
from repro.likelihood.mapping import (
    SubstitutionMapping,
    sample_substitution_mapping,
)
from repro.models.branch_site import BranchSiteModelA
from repro.models.m0 import M0Model
from repro.trees.newick import parse_newick

M0_VALUES = {"kappa": 2.0, "omega": 0.5}
BSA_VALUES = {"kappa": 2.2, "omega0": 0.2, "omega2": 4.0, "p0": 0.5, "p1": 0.3}


@pytest.fixture(scope="module")
def m0_bound():
    tree = parse_newick("((A:0.05,B:0.05):0.05,(C:0.05,D:0.05):0.05,E:0.08);")
    sim = simulate_alignment(tree, M0Model(), M0_VALUES, 60, seed=17)
    return make_engine("slim").bind(tree, sim.alignment, M0Model())


@pytest.fixture(scope="module")
def bsa_bound():
    tree = parse_newick("((A:0.2,B:0.1):0.08 #1,(C:0.15,D:0.12):0.05,E:0.3);")
    sim = simulate_alignment(tree, BranchSiteModelA(), BSA_VALUES, n_codons=40, seed=9)
    return make_engine("slim").bind(tree, sim.alignment, BranchSiteModelA())


class TestSampler:
    def test_shapes_and_nonnegativity(self, m0_bound):
        mapping = sample_substitution_mapping(m0_bound, M0_VALUES, n_samples=4, seed=1)
        n_branches = m0_bound.n_branches
        assert mapping.n_branches == n_branches == 7
        assert mapping.n_sites == 60  # expanded to sites, not patterns
        assert mapping.syn.shape == mapping.nonsyn.shape == (n_branches, 60)
        assert np.all(mapping.syn >= 0.0) and np.all(mapping.nonsyn >= 0.0)
        assert len(mapping.branch_labels) == n_branches
        assert mapping.n_samples == 4

    def test_deterministic_per_seed(self, m0_bound):
        one = sample_substitution_mapping(m0_bound, M0_VALUES, n_samples=4, seed=7)
        two = sample_substitution_mapping(m0_bound, M0_VALUES, n_samples=4, seed=7)
        assert np.array_equal(one.syn, two.syn)
        assert np.array_equal(one.nonsyn, two.nonsyn)
        other = sample_substitution_mapping(m0_bound, M0_VALUES, n_samples=4, seed=8)
        assert not (
            np.array_equal(one.syn, other.syn)
            and np.array_equal(one.nonsyn, other.nonsyn)
        )

    def test_event_totals_calibrate_with_tree_length(self, m0_bound):
        # Q is normalised to one expected substitution per site per unit
        # time, so total sampled events ≈ tree length × sites — a loose
        # factor-of-2 envelope holds for any healthy sampler.
        mapping = sample_substitution_mapping(m0_bound, M0_VALUES, n_samples=16, seed=3)
        total = float(mapping.syn.sum() + mapping.nonsyn.sum())
        expected = m0_bound.branch_lengths.sum() * mapping.n_sites
        assert 0.5 * expected < total < 2.0 * expected

    def test_zero_length_branches_sample_zero_events(self, m0_bound):
        lengths = np.array(m0_bound.branch_lengths, copy=True)
        lengths[0] = 0.0
        mapping = sample_substitution_mapping(
            m0_bound, M0_VALUES, branch_lengths=lengths, n_samples=4, seed=1
        )
        assert mapping.syn[0].sum() == 0.0 and mapping.nonsyn[0].sum() == 0.0

    def test_shares_uniformized_kernels_with_the_engine(self, m0_bound):
        engine = m0_bound.engine
        before = len(engine._uniformized)
        sample_substitution_mapping(m0_bound, M0_VALUES, n_samples=2, seed=1)
        # One uniformized kernel per distinct ω decomposition, memoised
        # on the engine — recovery rung 4 reuses the same cached powers.
        assert len(engine._uniformized) >= max(before, 1)

    def test_rejects_nonpositive_sample_count(self, m0_bound):
        with pytest.raises(ValueError, match="n_samples"):
            sample_substitution_mapping(m0_bound, M0_VALUES, n_samples=0)


class TestBatchedSerialEquivalence:
    """The batched sampler is a reordering of the serial reference, not
    an approximation: both consume the same canonical uniform stream and
    must emit bit-identical counts for a fixed seed."""

    @pytest.mark.parametrize("engine_name", ("codeml", "slim", "slim-v2"))
    @pytest.mark.parametrize("recover", (False, True), ids=("plain", "recovery"))
    def test_bit_identical_to_serial(self, engine_name, recover):
        tree = parse_newick("((A:0.2,B:0.1):0.08 #1,(C:0.15,D:0.12):0.05,E:0.3);")
        sim = simulate_alignment(
            tree, BranchSiteModelA(), BSA_VALUES, n_codons=30, seed=23
        )
        engine = make_engine(
            engine_name, recovery=RecoveryConfig() if recover else None
        )
        bound = engine.bind(tree, sim.alignment, BranchSiteModelA())
        serial = sample_substitution_mapping(
            bound, BSA_VALUES, n_samples=6, seed=11, method="serial"
        )
        batched = sample_substitution_mapping(
            bound, BSA_VALUES, n_samples=6, seed=11, method="batched"
        )
        assert np.array_equal(serial.syn, batched.syn)
        assert np.array_equal(serial.nonsyn, batched.nonsyn)
        assert np.array_equal(serial.syn_var, batched.syn_var)
        assert np.array_equal(serial.nonsyn_var, batched.nonsyn_var)
        assert serial.method == "serial" and batched.method == "batched"

    def test_method_validation(self, m0_bound):
        with pytest.raises(ValueError, match="method"):
            sample_substitution_mapping(m0_bound, M0_VALUES, method="turbo")


class TestUncertainty:
    def test_payload_carries_normal_ci(self, bsa_bound):
        payload = sample_substitution_mapping(
            bsa_bound, BSA_VALUES, n_samples=8, seed=3
        ).to_payload()
        ci = payload["mapping_ci"]
        assert ci["level"] == pytest.approx(0.95)
        assert len(ci["branches"]) == len(payload["branches"])
        for row in ci["branches"]:
            assert row["syn"] >= 0.0 and row["nonsyn"] >= 0.0
        sites = ci["foreground_sites"]
        assert len(sites["nonsyn"]) == len(payload["foreground_sites"]["nonsyn"])
        assert payload["method"] == "batched"
        assert payload["seconds"] >= 0.0

    def test_single_draw_ci_collapses_to_zero(self, bsa_bound):
        payload = sample_substitution_mapping(
            bsa_bound, BSA_VALUES, n_samples=1, seed=3
        ).to_payload()
        # One draw carries no spread information: every half-width is 0.
        ci = payload["mapping_ci"]
        assert all(row["syn"] == 0.0 and row["nonsyn"] == 0.0 for row in ci["branches"])
        assert not any(ci["foreground_sites"]["nonsyn"])


class TestForegroundAndPayload:
    def test_foreground_flags_follow_the_mark(self, bsa_bound):
        mapping = sample_substitution_mapping(bsa_bound, BSA_VALUES, n_samples=2, seed=5)
        flagged = [
            label
            for label, fg in zip(mapping.branch_labels, mapping.foreground)
            if fg
        ]
        assert len(flagged) == 1  # exactly the #1-marked branch

    def test_payload_shape_and_ratio_semantics(self, bsa_bound):
        mapping = sample_substitution_mapping(bsa_bound, BSA_VALUES, n_samples=4, seed=5)
        payload = mapping.to_payload()
        assert payload["n_samples"] == 4
        assert len(payload["branches"]) == mapping.n_branches
        for row in payload["branches"]:
            assert set(row) == {
                "branch", "foreground", "length", "syn", "nonsyn", "ratio"
            }
            if row["syn"] > 0.0:
                assert row["ratio"] == pytest.approx(row["nonsyn"] / row["syn"])
            else:
                assert row["ratio"] is None
        sites = payload["foreground_sites"]
        assert len(sites["syn"]) == len(sites["nonsyn"]) == mapping.n_sites
        # The foreground per-site table sums the flagged branches only.
        fg = np.asarray(mapping.foreground, dtype=bool)
        assert np.allclose(sites["nonsyn"], mapping.nonsyn[fg].sum(axis=0), atol=1e-6)

    def test_branch_totals_ratio_is_none_without_syn_events(self):
        mapping = SubstitutionMapping(
            branch_labels=["A", "B"],
            foreground=[True, False],
            branch_lengths=np.array([0.3, 0.1]),
            syn=np.array([[2.0, 0.0], [0.0, 0.0]]),
            nonsyn=np.array([[1.0, 0.5], [1.0, 0.0]]),
            n_samples=8,
        )
        rows = {row["branch"]: row for row in mapping.branch_totals()}
        assert rows["A"]["ratio"] == pytest.approx(1.5 / 2.0)
        assert rows["B"]["ratio"] is None
        assert rows["A"]["foreground"] and not rows["B"]["foreground"]
