"""Table II stand-in dataset factory."""

import numpy as np
import pytest

from repro.datasets import TABLE2_SPECS, make_dataset, species_sweep_dataset


class TestSpecs:
    def test_paper_shapes(self):
        shapes = {
            name: (spec.n_species, spec.n_codons) for name, spec in TABLE2_SPECS.items()
        }
        assert shapes == {
            "i": (7, 299),
            "ii": (6, 5004),
            "iii": (25, 67),
            "iv": (95, 39),
        }

    def test_paper_ids_recorded(self):
        assert TABLE2_SPECS["i"].paper_id.startswith("ENSGT")

    def test_true_values_complete(self):
        values = TABLE2_SPECS["i"].true_values()
        assert set(values) == {"kappa", "omega0", "omega2", "p0", "p1"}
        assert values["omega2"] > 1


class TestGeneration:
    @pytest.mark.parametrize("name", ["i", "iii", "iv"])
    def test_shape_matches_spec(self, name):
        ds = make_dataset(name)
        assert ds.alignment.n_taxa == ds.spec.n_species
        assert ds.alignment.n_codons == ds.spec.n_codons
        assert ds.tree.n_leaves == ds.spec.n_species
        assert ds.tree.n_branches == 2 * ds.spec.n_species - 3

    def test_foreground_marked(self):
        ds = make_dataset("iii")
        assert ds.tree.require_single_foreground() is not None

    def test_deterministic(self):
        a = make_dataset("iii")
        b = make_dataset("iii")
        assert np.array_equal(a.alignment.states, b.alignment.states)
        assert a.tree.branch_lengths() == pytest.approx(b.tree.branch_lengths())

    def test_ground_truth_classes_recorded(self):
        ds = make_dataset("iii")
        assert ds.true_site_classes.shape == (67,)
        assert ds.true_site_classes.max() <= 3

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            make_dataset("v")


class TestSpeciesSweep:
    @pytest.mark.parametrize("n", [15, 25, 55])
    def test_fig3_family(self, n):
        ds = species_sweep_dataset(n)
        assert ds.alignment.n_taxa == n
        assert ds.alignment.n_codons == 39  # dataset iv length
        assert ds.name == f"iv-{n}sp"

    def test_shares_iv_parameters(self):
        ds = species_sweep_dataset(15)
        assert ds.true_values == TABLE2_SPECS["iv"].true_values()
